//! Deterministic, zero-dependency observability primitives.
//!
//! Everything the workspace measures falls on one side of a hard line:
//!
//! * **Tick-domain metrics** — [`Counter`], [`Gauge`] and
//!   [`TickHistogram`] record *simulation* quantities (tick timestamps,
//!   queue depths, retry counts). They are exact integer arithmetic on
//!   preallocated storage: recording never allocates, never touches an
//!   RNG, and two runs over the same `(config, seed)` produce
//!   **identical** contents whatever queue backend or worker-thread
//!   count executed them. These are safe to leave on unconditionally.
//! * **Wall-clock profiling** — [`PhaseTimer`] spans folded into a
//!   [`PhaseProfile`] attribute *host* time to the simulator's phases
//!   ([`Phase::Scheduler`], [`Phase::SnapshotBuild`], …). Durations are
//!   informational-only: they vary run to run and machine to machine,
//!   and they must never feed back into anything deterministic.
//!
//! The same split governs the engine runtime's
//! [`Snapshot`](crate::engine::Snapshot)/[`TracePoint`](crate::engine::TracePoint):
//! `elapsed` is wall-clock and informational, everything else is exact.
//!
//! [`MetricsRegistry`] holds named instances of all three instruments
//! behind `BTreeMap`s (deterministic iteration order), [`MetricsSink`]
//! adapts the registry to the engine runtime's
//! [`Observer`](crate::engine::Observer) pipeline, and [`JsonlWriter`]
//! emits structured JSON-lines traces (one flat object per line, no
//! serde — the workspace's dependency policy admits none).

use std::collections::BTreeMap;
use std::io::Write;
use std::time::Instant;

use crate::engine::{Metaheuristic, Observer, Snapshot};

// --- counters and gauges ---------------------------------------------------

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n` (saturating, so a pathological run cannot wrap).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A sampled instantaneous value with a high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    high: i64,
    samples: u64,
}

impl Gauge {
    /// A gauge with no samples.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    #[inline]
    pub fn set(&mut self, value: i64) {
        self.value = value;
        self.high = if self.samples == 0 {
            value
        } else {
            self.high.max(value)
        };
        self.samples += 1;
    }

    /// Most recent sample (zero before the first).
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value
    }

    /// Largest sample seen (zero before the first).
    #[must_use]
    pub fn high_water(&self) -> i64 {
        if self.samples == 0 {
            0
        } else {
            self.high
        }
    }

    /// How many samples were recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

// --- the tick-domain histogram ---------------------------------------------

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS` linear sub-buckets, bounding relative quantile error at
/// `2^-SUB_BITS` = 12.5%.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;

/// Fixed bucket count of [`TickHistogram`]: values `0..8` get exact
/// unit buckets; every power-of-two range `[2^k, 2^{k+1})` for
/// `k = 3..=63` (61 ranges) gets [`SUBS`] linear sub-buckets.
pub const NUM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A fixed-bucket log2-linear histogram over `u64` values (ticks,
/// counts — any non-negative integer domain).
///
/// Recording is two array updates and a handful of integer ops: no
/// allocation, no floating point, no RNG. Contents are therefore exactly
/// reproducible — bit-identical across runs, queue backends and worker
/// thread counts — which is what lets the simulator keep these on
/// unconditionally without violating its determinism pins.
///
/// Quantiles resolve to a bucket upper edge (clamped into the observed
/// `[min, max]`), so a reported percentile overshoots the true
/// order statistic by at most `2^-3` = 12.5% relative; `count`, `sum`,
/// `min`, `max` (and hence [`TickHistogram::mean`]) are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for TickHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of `value`. Exact for `value < 8`; otherwise the
/// power-of-two range selects a group and the next [`SUB_BITS`] bits
/// select the linear sub-bucket.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
        SUBS + (msb - SUB_BITS) as usize * SUBS + sub
    }
}

/// Inclusive `(low, high)` value bounds of bucket `index`.
#[must_use]
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBS {
        (index as u64, index as u64)
    } else {
        let group = ((index - SUBS) / SUBS) as u32; // msb - SUB_BITS
        let sub = ((index - SUBS) % SUBS) as u64;
        let width = 1u64 << group;
        let low = (SUBS as u64 + sub) << group;
        // The very last bucket tops out at u64::MAX; subtract before
        // adding so the edge cannot overflow.
        (low, low + (width - 1))
    }
}

impl TickHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Allocation-free.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a tick quantity, clamping stray negatives to zero (tick
    /// deltas are non-negative by the simulator's clock monotonicity,
    /// asserted in debug builds).
    #[inline]
    pub fn record_ticks(&mut self, ticks: i64) {
        debug_assert!(ticks >= 0, "negative tick quantity {ticks}");
        self.record(ticks.max(0) as u64);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded value.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]` of the recorded distribution, resolved
    /// at bucket granularity: the upper edge of the bucket holding the
    /// `⌈q·count⌉`-th smallest value, clamped into the exact observed
    /// `[min, max]`. `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, high) = bucket_bounds(index);
                return Some(high.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median ([`Self::quantile`] at 0.50).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The raw bucket array — the determinism tests' comparison unit.
    #[must_use]
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Non-empty buckets as `(index, count, low, high)` rows.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| {
                let (low, high) = bucket_bounds(index);
                (index, n, low, high)
            })
    }

    /// Folds another histogram into this one (exact: bucket-wise sums).
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// --- the phase profiler ----------------------------------------------------

/// The simulator's wall-clock phase taxonomy. One activation splits into
/// snapshot build → scheduler → dispatch; everything else the event loop
/// does is queue traffic or fault handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Inside `BatchScheduler::schedule` (the planning call itself).
    Scheduler,
    /// Building the activation's ETC/ready-time snapshot.
    SnapshotBuild,
    /// Bucketing the plan, enqueueing per machine, kicking idle machines.
    Dispatch,
    /// Event-queue traffic: pops plus the non-fault event handlers
    /// (arrivals, finishes, churn).
    Queue,
    /// Fault-layer handlers: transient failures, retries, crash/repair.
    FaultHandling,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 5] = [
        Phase::Scheduler,
        Phase::SnapshotBuild,
        Phase::Dispatch,
        Phase::Queue,
        Phase::FaultHandling,
    ];

    /// Stable snake_case name (the JSONL/report key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Scheduler => "scheduler",
            Phase::SnapshotBuild => "snapshot_build",
            Phase::Dispatch => "dispatch",
            Phase::Queue => "queue",
            Phase::FaultHandling => "fault_handling",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::Scheduler => 0,
            Phase::SnapshotBuild => 1,
            Phase::Dispatch => 2,
            Phase::Queue => 3,
            Phase::FaultHandling => 4,
        }
    }
}

/// Accumulated wall-clock seconds and span counts per [`Phase`].
///
/// Wall-clock durations are **informational-only**: they vary with the
/// host, the load and the run, and nothing deterministic may depend on
/// them. Span *counts* are tick-domain facts and replay exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseProfile {
    wall_s: [f64; 5],
    calls: [u64; 5],
}

impl PhaseProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one span of `seconds` into `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, seconds: f64) {
        self.wall_s[phase.index()] += seconds;
        self.calls[phase.index()] += 1;
    }

    /// Accumulated wall-clock seconds of a phase.
    #[must_use]
    pub fn wall_s(&self, phase: Phase) -> f64 {
        self.wall_s[phase.index()]
    }

    /// Spans recorded for a phase.
    #[must_use]
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()]
    }

    /// Total attributed wall-clock seconds.
    #[must_use]
    pub fn total_wall_s(&self) -> f64 {
        self.wall_s.iter().sum()
    }

    /// A phase's fraction of the attributed total, in `[0, 1]`
    /// (0 when nothing was recorded).
    #[must_use]
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_wall_s();
        if total == 0.0 {
            0.0
        } else {
            self.wall_s(phase) / total
        }
    }

    /// Whether any span was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|&c| c == 0)
    }

    /// Folds another profile into this one.
    pub fn merge(&mut self, other: &Self) {
        for phase in Phase::ALL {
            self.wall_s[phase.index()] += other.wall_s[phase.index()];
            self.calls[phase.index()] += other.calls[phase.index()];
        }
    }
}

/// A scoped wall-clock span: start at construction, [`stop`]
/// (consuming) to fold the elapsed duration into a [`PhaseProfile`].
///
/// Explicitly consumed rather than `Drop`-based so the profile borrow is
/// taken only at the fold, which keeps the simulator's `&mut self`
/// handlers borrow-clean.
///
/// [`stop`]: PhaseTimer::stop
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
}

impl PhaseTimer {
    /// Starts timing `phase` now.
    #[must_use]
    pub fn start(phase: Phase) -> Self {
        Self {
            phase,
            start: Instant::now(),
        }
    }

    /// Ends the span, folding its wall-clock duration into `profile`,
    /// and returns the elapsed seconds.
    pub fn stop(self, profile: &mut PhaseProfile) -> f64 {
        let seconds = self.start.elapsed().as_secs_f64();
        profile.record(self.phase, seconds);
        seconds
    }
}

// --- the registry ----------------------------------------------------------

/// Named metrics behind deterministic (`BTreeMap`) iteration order:
/// counters, gauges and tick histograms. The engine/portfolio layer
/// tags entries by dotted path (`portfolio.cMA.children`); rendering
/// code iterates in key order so reports are stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, TickHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The named counter, created zeroed on first touch.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), Counter::new());
        }
        self.counters.get_mut(name).expect("inserted above")
    }

    /// The named gauge, created empty on first touch.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        if !self.gauges.contains_key(name) {
            self.gauges.insert(name.to_owned(), Gauge::new());
        }
        self.gauges.get_mut(name).expect("inserted above")
    }

    /// The named histogram, created empty on first touch.
    pub fn histogram(&mut self, name: &str) -> &mut TickHistogram {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_owned(), TickHistogram::new());
        }
        self.histograms.get_mut(name).expect("inserted above")
    }

    /// A counter's value (0 when absent).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// A histogram, when present.
    #[must_use]
    pub fn get_histogram(&self, name: &str) -> Option<&TickHistogram> {
        self.histograms.get(name)
    }

    /// All counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &Counter)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All gauges, in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &Gauge)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All histograms, in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &TickHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into this registry, prefixing every incoming key
    /// with `prefix` (counters add, gauges re-sample the latest value,
    /// histograms merge).
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Self) {
        for (name, counter) in other.counters() {
            self.counter(&format!("{prefix}{name}")).add(counter.get());
        }
        for (name, gauge) in other.gauges() {
            if gauge.samples() > 0 {
                self.gauge(&format!("{prefix}{name}")).set(gauge.get());
            }
        }
        for (name, histogram) in other.histograms() {
            self.histogram(&format!("{prefix}{name}")).merge(histogram);
        }
    }
}

// --- the engine-runtime sink -----------------------------------------------

/// An [`Observer`] that folds a run's deterministic counters into a
/// [`MetricsRegistry`] under a key prefix (`""` for a bare run,
/// `"portfolio.cMA."` for a tagged contender): runs started/finished,
/// improvements, final iterations/children, and a histogram of the
/// children count at each improvement (the search-effort profile).
/// Wall-clock (`Snapshot::elapsed`) is deliberately **not** recorded —
/// everything this sink writes replays bit-identically.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    prefix: String,
    registry: MetricsRegistry,
}

impl MetricsSink {
    /// A sink tagging every key with `prefix`.
    #[must_use]
    pub fn new(prefix: impl Into<String>) -> Self {
        Self {
            prefix: prefix.into(),
            registry: MetricsRegistry::new(),
        }
    }

    fn key(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// The accumulated registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the sink, yielding its registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl Observer for MetricsSink {
    fn on_start(&mut self, _snapshot: &Snapshot) {
        let key = self.key("runs");
        self.registry.counter(&key).inc();
    }

    fn on_improvement(&mut self, snapshot: &Snapshot) {
        let key = self.key("improvements");
        self.registry.counter(&key).inc();
        let key = self.key("improvement_children");
        self.registry.histogram(&key).record(snapshot.children);
    }

    fn on_iteration(&mut self, snapshot: &Snapshot, _engine: &dyn Metaheuristic) {
        let key = self.key("iterations");
        self.registry.gauge(&key).set(snapshot.iterations as i64);
    }

    fn on_finish(&mut self, snapshot: &Snapshot) {
        let key = self.key("finishes");
        self.registry.counter(&key).inc();
        let key = self.key("children");
        self.registry.counter(&key).add(snapshot.children);
    }
}

// --- the JSONL trace writer ------------------------------------------------

/// A structured JSON-lines writer: every record is one flat JSON object
/// on its own line, starting with a `"type"` discriminator. Hand-rolled
/// (no serde) per the workspace's zero-dependency policy; the schema the
/// simulator emits is documented in the README's Observability section.
///
/// # Panics
///
/// Write failures panic with context — traces feed offline analysis,
/// and a silently truncated trace is worse than a dead run.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
    buf: String,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a byte sink.
    #[must_use]
    pub fn new(out: W) -> Self {
        Self {
            out,
            buf: String::new(),
        }
    }

    /// Opens a record of the given `"type"`. Finish it with
    /// [`JsonlRecord::end`].
    pub fn record(&mut self, kind: &str) -> JsonlRecord<'_, W> {
        self.buf.clear();
        self.buf.push_str("{\"type\":");
        push_json_string(&mut self.buf, kind);
        JsonlRecord { writer: self }
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) {
        self.out.flush().expect("telemetry trace flush failed");
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(mut self) -> W {
        self.flush();
        self.out
    }
}

/// One in-flight JSONL record; append fields, then [`end`](Self::end).
#[derive(Debug)]
pub struct JsonlRecord<'a, W: Write> {
    writer: &'a mut JsonlWriter<W>,
}

impl<W: Write> JsonlRecord<'_, W> {
    fn sep(&mut self) {
        self.writer.buf.push(',');
    }

    fn push_key(&mut self, key: &str) {
        self.sep();
        push_json_string(&mut self.writer.buf, key);
        self.writer.buf.push(':');
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        let mut scratch = itoa_u64(value);
        self.writer.buf.push_str(scratch.as_str());
        scratch.clear();
        self
    }

    /// Appends a signed integer field.
    #[must_use]
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.push_key(key);
        if value < 0 {
            self.writer.buf.push('-');
        }
        self.writer
            .buf
            .push_str(itoa_u64(value.unsigned_abs()).as_str());
        self
    }

    /// Appends a float field (`null` for non-finite values, which JSON
    /// cannot represent).
    #[must_use]
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            // Rust's shortest-roundtrip Display for finite f64 is valid
            // JSON.
            let mut buf = [0u8; 32];
            let mut cursor = std::io::Cursor::new(&mut buf[..]);
            let _ = write!(cursor, "{value}");
            let len = cursor.position() as usize;
            let text = std::str::from_utf8(&buf[..len]).expect("ASCII float");
            self.writer.buf.push_str(text);
        } else {
            self.writer.buf.push_str("null");
        }
        self
    }

    /// Appends a string field (escaped).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        push_json_string(&mut self.writer.buf, value);
        self
    }

    /// Appends a hex-encoded 64-bit digest as a string field (JSON
    /// numbers above 2⁵³ are hazardous to downstream tooling).
    #[must_use]
    pub fn hex(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        self.writer.buf.push('"');
        for shift in (0..16).rev() {
            let nibble = ((value >> (shift * 4)) & 0xF) as usize;
            self.writer
                .buf
                .push(char::from(b"0123456789abcdef"[nibble]));
        }
        self.writer.buf.push('"');
        self
    }

    /// Closes the record and writes the line.
    pub fn end(self) {
        self.writer.buf.push_str("}\n");
        self.writer
            .out
            .write_all(self.writer.buf.as_bytes())
            .expect("telemetry trace write failed");
    }
}

/// Decimal formatting without `format!` churn on the record hot path.
fn itoa_u64(value: u64) -> String {
    // Records are only built when tracing is enabled, so a small String
    // here is fine; the disabled path never reaches this.
    value.to_string()
}

/// Pushes `text` as a JSON string literal (quotes, escapes).
fn push_json_string(buf: &mut String, text: &str) {
    buf.push('"');
    for ch in text.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objectives;
    use std::time::Duration;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        assert_eq!(g.high_water(), 0);
        g.set(-3);
        assert_eq!(g.high_water(), -3, "first sample sets the mark");
        g.set(7);
        g.set(2);
        assert_eq!((g.get(), g.high_water(), g.samples()), (2, 7, 3));
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_is_exact_below_the_linear_cutoff() {
        let mut h = TickHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(h.buckets()[v as usize], 1, "value {v} gets a unit bucket");
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.mean(), 3.5);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's bounds round-trip through the index function,
        // buckets tile contiguously, and extremes land in range.
        let mut expected_low = 0u64;
        for index in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low, "bucket {index} must tile contiguously");
            assert!(low <= high);
            assert_eq!(bucket_index(low), index, "low bound of {index}");
            assert_eq!(bucket_index(high), index, "high bound of {index}");
            expected_low = high.wrapping_add(1);
        }
        assert_eq!(expected_low, 0, "the last bucket must end at u64::MAX");
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_resolve_within_bucket_error() {
        let mut h = TickHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let got = h.quantile(q).expect("non-empty") as f64;
            let exact = exact as f64;
            assert!(
                got >= exact && got <= exact * 1.125 + 1.0,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.quantile(0.0), Some(1), "q=0 clamps to the minimum");
        assert_eq!(h.quantile(1.0), Some(1000), "q=1 clamps to the maximum");
    }

    #[test]
    fn quantile_of_a_constant_distribution_is_exact() {
        let mut h = TickHistogram::new();
        for _ in 0..100 {
            h.record(123_456);
        }
        // The clamp into [min, max] makes degenerate distributions exact
        // even though the bucket is 2^14 wide out here.
        assert_eq!(h.p50(), Some(123_456));
        assert_eq!(h.p99(), Some(123_456));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = TickHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let mut a = TickHistogram::new();
        let mut b = TickHistogram::new();
        let mut whole = TickHistogram::new();
        for v in [3u64, 17, 900, 1 << 40] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 5, 123_456] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal recording the union");
    }

    #[test]
    fn identical_streams_yield_identical_histograms() {
        let record_all = |values: &[u64]| {
            let mut h = TickHistogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let values: Vec<u64> = (0..5000).map(|i| (i * 2654435761) % (1 << 45)).collect();
        assert_eq!(record_all(&values), record_all(&values));
    }

    #[test]
    fn phase_profile_attributes_and_shares() {
        let mut p = PhaseProfile::new();
        assert!(p.is_empty());
        p.record(Phase::Scheduler, 3.0);
        p.record(Phase::SnapshotBuild, 1.0);
        p.record(Phase::Scheduler, 1.0);
        assert_eq!(p.calls(Phase::Scheduler), 2);
        assert_eq!(p.wall_s(Phase::Scheduler), 4.0);
        assert_eq!(p.total_wall_s(), 5.0);
        assert_eq!(p.share(Phase::Scheduler), 0.8);
        assert_eq!(p.share(Phase::Queue), 0.0);
        let mut q = PhaseProfile::new();
        q.record(Phase::Queue, 5.0);
        p.merge(&q);
        assert_eq!(p.share(Phase::Queue), 0.5);
    }

    #[test]
    fn phase_timer_folds_into_the_profile() {
        let mut p = PhaseProfile::new();
        let timer = PhaseTimer::start(Phase::Dispatch);
        let elapsed = timer.stop(&mut p);
        assert!(elapsed >= 0.0);
        assert_eq!(p.calls(Phase::Dispatch), 1);
        assert!(p.wall_s(Phase::Dispatch) >= 0.0);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "scheduler",
                "snapshot_build",
                "dispatch",
                "queue",
                "fault_handling"
            ]
        );
    }

    #[test]
    fn registry_creates_on_first_touch_and_iterates_in_key_order() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.counter("b.count").add(2);
        r.counter("a.count").inc();
        r.gauge("depth").set(9);
        r.histogram("wait").record(100);
        let keys: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.count", "b.count"], "BTreeMap order");
        assert_eq!(r.counter_value("b.count"), 2);
        assert_eq!(r.counter_value("missing"), 0);
        assert_eq!(r.get_histogram("wait").map(TickHistogram::count), Some(1));
    }

    #[test]
    fn registry_merge_prefixes_every_key() {
        let mut inner = MetricsRegistry::new();
        inner.counter("children").add(10);
        inner.gauge("iterations").set(3);
        inner.histogram("improvement_children").record(7);
        let mut outer = MetricsRegistry::new();
        outer.merge_prefixed("portfolio.cMA.", &inner);
        outer.merge_prefixed("portfolio.cMA.", &inner);
        assert_eq!(outer.counter_value("portfolio.cMA.children"), 20);
        assert_eq!(
            outer
                .get_histogram("portfolio.cMA.improvement_children")
                .map(TickHistogram::count),
            Some(2)
        );
    }

    fn snapshot(iterations: u64, children: u64) -> Snapshot {
        Snapshot {
            elapsed: Duration::from_millis(1),
            iterations,
            children,
            fitness: 10.0,
            objectives: Objectives {
                makespan: 1.0,
                flowtime: 2.0,
            },
        }
    }

    #[test]
    fn metrics_sink_records_deterministic_run_facts() {
        let mut sink = MetricsSink::new("portfolio.cMA.");
        sink.on_start(&snapshot(0, 0));
        sink.on_improvement(&snapshot(1, 40));
        sink.on_improvement(&snapshot(2, 90));
        sink.on_finish(&snapshot(5, 200));
        let r = sink.registry();
        assert_eq!(r.counter_value("portfolio.cMA.runs"), 1);
        assert_eq!(r.counter_value("portfolio.cMA.improvements"), 2);
        assert_eq!(r.counter_value("portfolio.cMA.children"), 200);
        let h = r
            .get_histogram("portfolio.cMA.improvement_children")
            .expect("recorded");
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(40));
    }

    #[test]
    fn jsonl_writer_emits_one_flat_object_per_line() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record("arrival")
            .u64("t", 42)
            .u64("job", 7)
            .f64("baseline", 1.5)
            .end();
        w.record("run_end")
            .str("scheduler", "cMA[λ=0.5]")
            .i64("delta", -3)
            .f64("nan", f64::NAN)
            .hex("digest", 0x00ab_cdef_0123_4567)
            .end();
        let out = String::from_utf8(w.into_inner()).expect("UTF-8");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"arrival\",\"t\":42,\"job\":7,\"baseline\":1.5}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"run_end\",\"scheduler\":\"cMA[λ=0.5]\",\"delta\":-3,\
             \"nan\":null,\"digest\":\"00abcdef01234567\"}"
        );
    }

    #[test]
    fn jsonl_strings_escape_controls_and_quotes() {
        let mut buf = String::new();
        push_json_string(&mut buf, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(buf, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }
}
