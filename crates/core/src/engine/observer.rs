//! Pluggable run telemetry.
//!
//! The [`Runner`](crate::engine::Runner) notifies observers at run
//! start, on every best-so-far improvement, once per completed engine
//! iteration and at run end. The built-in [`TraceSink`] turns those
//! notifications into the best-so-far [`TracePoint`] series every
//! outcome type ships, and [`DiversitySink`] records the per-iteration
//! [`DiversityPoint`] series from whatever
//! [`Metaheuristic::population_diversity`](crate::engine::Metaheuristic::population_diversity)
//! exposes; richer sinks (live dashboards, convergence loggers,
//! early-warning monitors) implement the same trait without touching
//! any engine.

use std::time::Duration;

use crate::diversity::DiversityPoint;
use crate::engine::{Metaheuristic, TracePoint};
use crate::Objectives;

/// One observation of a running engine.
///
/// Everything except [`Snapshot::elapsed`] is exact and deterministic;
/// `elapsed` is wall-clock and **informational-only** (see
/// `cmags_core::telemetry` for the split). Sinks that feed determinism
/// pins — [`crate::telemetry::MetricsSink`], trace-key comparisons —
/// must not record it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Wall-clock time since run start.
    /// Informational-only: nondeterministic across runs and hosts.
    pub elapsed: Duration,
    /// Engine-defined outer iterations completed.
    pub iterations: u64,
    /// Children generated.
    pub children: u64,
    /// Best-so-far scalar fitness (lower is better).
    pub fitness: f64,
    /// Best-so-far objectives.
    pub objectives: Objectives,
}

/// A sink for run telemetry. All methods default to no-ops so sinks
/// implement only what they need.
pub trait Observer {
    /// The run is initialised but no step has executed yet.
    fn on_start(&mut self, snapshot: &Snapshot) {
        let _ = snapshot;
    }

    /// The engine's best-so-far fitness just improved.
    fn on_improvement(&mut self, snapshot: &Snapshot) {
        let _ = snapshot;
    }

    /// An engine-defined outer iteration completed (also fired once at
    /// run start for the iteration-0 baseline). `engine` is the live
    /// engine, so sinks can sample whatever trait telemetry they need
    /// (e.g. [`Metaheuristic::population_diversity`]) — and only sinks
    /// that ask pay for it.
    fn on_iteration(&mut self, snapshot: &Snapshot, engine: &dyn Metaheuristic) {
        let _ = (snapshot, engine);
    }

    /// The stop condition tripped; this is the final state.
    fn on_finish(&mut self, snapshot: &Snapshot) {
        let _ = snapshot;
    }
}

/// Records the classic best-so-far trace: one point at start, one per
/// improvement, one at the end (the shape the paper's convergence
/// figures are drawn from).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    points: Vec<TracePoint>,
}

impl TraceSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded trace.
    #[must_use]
    pub fn into_points(self) -> Vec<TracePoint> {
        self.points
    }

    fn record(&mut self, snapshot: &Snapshot) {
        self.points.push(TracePoint::new(
            snapshot.elapsed,
            snapshot.iterations,
            snapshot.children,
            snapshot.objectives.makespan,
            snapshot.objectives.flowtime,
            snapshot.fitness,
        ));
    }
}

impl Observer for TraceSink {
    fn on_start(&mut self, snapshot: &Snapshot) {
        self.record(snapshot);
    }

    fn on_improvement(&mut self, snapshot: &Snapshot) {
        self.record(snapshot);
    }

    fn on_finish(&mut self, snapshot: &Snapshot) {
        self.record(snapshot);
    }
}

/// Records the per-iteration population diversity series of any engine
/// exposing [`Metaheuristic::population_diversity`] (one point at start
/// for the initial population, one per completed iteration). Resumable
/// runs deduplicate the boundary sample: a second reading at an
/// already-recorded iteration is skipped, so driving an engine through
/// several consecutive runs (portfolio rounds) yields one clean series.
#[derive(Debug, Clone, Default)]
pub struct DiversitySink {
    points: Vec<DiversityPoint>,
}

impl DiversitySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded series.
    #[must_use]
    pub fn into_points(self) -> Vec<DiversityPoint> {
        self.points
    }

    /// The recorded series, by reference.
    #[must_use]
    pub fn points(&self) -> &[DiversityPoint] {
        &self.points
    }
}

impl Observer for DiversitySink {
    fn on_iteration(&mut self, snapshot: &Snapshot, engine: &dyn Metaheuristic) {
        if self
            .points
            .last()
            .is_some_and(|p| p.iteration >= snapshot.iterations)
        {
            return;
        }
        if let Some(sample) = engine.population_diversity() {
            self.points
                .push(DiversityPoint::at(snapshot.iterations, sample));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::DiversitySample;
    use crate::engine::{Runner, StopCondition};

    /// Toy population engine: diversity decays by half per iteration.
    struct Decay {
        steps: u64,
    }

    impl Metaheuristic for Decay {
        fn name(&self) -> &'static str {
            "decay"
        }
        fn step(&mut self) {
            self.steps += 1;
        }
        fn iterations(&self) -> u64 {
            self.steps / 2
        }
        fn children(&self) -> u64 {
            self.steps
        }
        fn best_fitness(&self) -> f64 {
            100.0
        }
        fn best_objectives(&self) -> Objectives {
            Objectives {
                makespan: 100.0,
                flowtime: 100.0,
            }
        }
        fn population_diversity(&self) -> Option<DiversitySample> {
            Some(DiversitySample {
                entropy: 0.5f64.powi(self.iterations() as i32),
                fitness_spread: 0.0,
            })
        }
    }

    #[test]
    fn diversity_sink_records_baseline_and_each_iteration() {
        let mut engine = Decay { steps: 0 };
        let mut sink = DiversitySink::new();
        let _ = Runner::new(StopCondition::iterations(3)).run(&mut engine, &mut [&mut sink]);
        let points = sink.into_points();
        let iterations: Vec<u64> = points.iter().map(|p| p.iteration).collect();
        assert_eq!(iterations, vec![0, 1, 2, 3]);
        assert!(points.windows(2).all(|w| w[1].entropy < w[0].entropy));
    }

    #[test]
    fn diversity_sink_deduplicates_resumed_runs() {
        let mut engine = Decay { steps: 0 };
        let mut sink = DiversitySink::new();
        // Two consecutive runs over the same engine (portfolio rounds):
        // the round boundary must not duplicate the shared iteration.
        let _ = Runner::new(StopCondition::iterations(2)).run(&mut engine, &mut [&mut sink]);
        let _ = Runner::new(StopCondition::iterations(4)).run(&mut engine, &mut [&mut sink]);
        let iterations: Vec<u64> = sink.points().iter().map(|p| p.iteration).collect();
        assert_eq!(iterations, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn trace_sink_records_all_hooks() {
        let snapshot = Snapshot {
            elapsed: Duration::from_millis(5),
            iterations: 1,
            children: 2,
            fitness: 3.0,
            objectives: Objectives {
                makespan: 4.0,
                flowtime: 5.0,
            },
        };
        let mut sink = TraceSink::new();
        sink.on_start(&snapshot);
        sink.on_improvement(&snapshot);
        sink.on_finish(&snapshot);
        let points = sink.into_points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].children, 2);
        assert_eq!(points[0].makespan, 4.0);
        assert_eq!(points[0].fitness, 3.0);
    }
}
