//! Tests whether the cMA's advantage over each baseline is larger than
//! run-to-run noise: Mann-Whitney U + Vargha-Delaney Â₁₂ over repeated
//! seeded runs (methodological upgrade over the paper's best-of-10).

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::significance::significance;
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    emit(&ctx, &[significance(&ctx)]);
}
