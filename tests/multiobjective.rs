//! Cross-crate integration tests of the multi-objective extension
//! (paper §6 future work): the MO engines must compose correctly with
//! the ETC substrate, the shared evaluation core and the cMA's λ-scan.

use cmags::cma::pareto::pareto_front;
use cmags::mo::indicators::{hypervolume, reference_point};
use cmags::mo::ranking::non_dominated;
use cmags::prelude::*;

mod common;

fn instance() -> GridInstance {
    common::braun_instance("u_s_hihi.0", 96, 8)
}

#[test]
fn mocell_front_members_are_real_schedules() {
    let inst = instance();
    let problem = Problem::from_instance(&inst);
    let outcome = MoCellConfig::suggested()
        .with_stop(StopCondition::children(400))
        .run(&problem, 5);
    assert!(!outcome.front().is_empty());
    for solution in outcome.front() {
        // Feasible assignment vector...
        assert_eq!(solution.schedule.nb_jobs(), problem.nb_jobs());
        assert!(solution
            .schedule
            .assignment()
            .iter()
            .all(|&m| (m as usize) < problem.nb_machines()));
        // ...whose stored objectives are exactly the evaluator's.
        common::assert_reevaluates(&problem, &solution.schedule, solution.objectives);
    }
}

#[test]
fn mocell_covers_the_scalarised_optimum_region() {
    // The best scalarised fitness achievable from the MoCell front must
    // be competitive with a dedicated λ=0.75 cMA run at equal total
    // budget: the front is useless if its λ-composite is far off.
    let inst = instance();
    let problem = Problem::from_instance(&inst);
    let budget = 1_200u64;
    let cma = CmaConfig::paper()
        .with_stop(StopCondition::children(budget))
        .run(&problem, 9);
    let mocell = MoCellConfig::suggested()
        .with_stop(StopCondition::children(budget))
        .run(&problem, 9);
    let best_composite = mocell
        .front()
        .iter()
        .map(|s| problem.fitness(s.objectives))
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_composite <= cma.fitness * 1.10,
        "MoCell composite {best_composite} should be within 10% of the cMA's {}",
        cma.fitness
    );
}

#[test]
fn lambda_scan_points_are_not_dominated_by_nsga2_at_equal_budget() {
    // The λ-scan (7 memetic cMA runs) should at minimum not be wholly
    // dominated by the classic NSGA-II without local search.
    let inst = instance();
    let problem = Problem::from_instance(&inst);
    let lambdas = [0.0, 0.5, 1.0];
    let scan = pareto_front(
        &inst,
        &CmaConfig::paper(),
        StopCondition::children(300),
        &lambdas,
        3,
    );
    let nsga2 = Nsga2Config::suggested()
        .with_population(20)
        .with_stop(StopCondition::children(900))
        .run(&problem, 3);
    let scan_points: Vec<Objectives> = scan
        .points()
        .iter()
        .map(|p| Objectives {
            makespan: p.makespan,
            flowtime: p.flowtime,
        })
        .collect();
    let survivors = scan_points.iter().filter(|&&p| {
        nsga2
            .front
            .iter()
            .all(|s| !cmags::mo::dominates(s.objectives, p))
    });
    assert!(
        survivors.count() > 0,
        "at least one λ-scan point must survive NSGA-II domination"
    );
}

#[test]
fn union_hypervolume_is_an_upper_bound() {
    let inst = instance();
    let problem = Problem::from_instance(&inst);
    let mocell = MoCellConfig::suggested()
        .with_stop(StopCondition::children(300))
        .run(&problem, 1);
    let nsga2 = Nsga2Config::suggested()
        .with_population(16)
        .with_stop(StopCondition::children(300))
        .run(&problem, 1);

    let a = mocell.archive.objectives();
    let b: Vec<Objectives> = nsga2.front.iter().map(|s| s.objectives).collect();
    let union: Vec<Objectives> = a.iter().chain(&b).copied().collect();
    let union_front: Vec<Objectives> = non_dominated(&union)
        .into_iter()
        .map(|i| union[i])
        .collect();

    let reference = reference_point(&[&union], 0.05);
    let hv_union = hypervolume(&union_front, reference);
    assert!(hv_union + 1e-9 >= hypervolume(&a, reference));
    assert!(hv_union + 1e-9 >= hypervolume(&b, reference));
}

#[test]
fn mo_engines_are_deterministic_end_to_end() {
    let inst = instance();
    let problem = Problem::from_instance(&inst);
    let run = |seed| {
        MoCellConfig::suggested()
            .with_stop(StopCondition::children(200))
            .run(&problem, seed)
            .archive
            .objectives()
    };
    assert_eq!(run(7), run(7));
}
