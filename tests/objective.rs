//! Cross-engine objective pins: the tunable response-blend objective at
//! λ = 0 must be **bit-for-bit** identical to the classic (pre-λ)
//! scalarisation for every engine in the workspace.
//!
//! The constants below were captured from the workspace *before* the
//! `Objective` plumbing landed; they pin seed-fixed short runs of all
//! ten engines. If any of them changes, the λ = 0 path stopped being the
//! identity — which breaks the whole-workspace compatibility contract,
//! not just a test. Update them only for a deliberate change to an
//! engine's search behaviour.

use cmags::ga::GaOutcome;
use cmags::prelude::*;

mod common;

fn problem() -> Problem {
    common::braun_problem("u_c_hihi.0", 64, 8)
}

/// Drives one engine for a fixed tiny children budget and returns the
/// best-fitness bits.
fn bits_of(engine: &mut dyn Metaheuristic, children: u64) -> u64 {
    let _ = Runner::new(StopCondition::children(children)).run_traced(engine);
    engine.best_fitness().to_bits()
}

#[test]
fn all_ten_engines_pin_their_classic_fitness_bits() {
    let p = problem();
    let seed = 3u64;
    let budget = 120u64;

    let cma_config = CmaConfig::paper();
    let sa = SimulatedAnnealing::default();
    let tabu = TabuSearch::default();
    let ssga = SteadyStateGa::default();
    let struggle = StruggleGa::default();
    let braun_ga = BraunGa::default();
    let gsa = GeneticSimulatedAnnealing::default();
    let panmictic = PanmicticMa::default();
    let mocell = cmags::mo::MoCellConfig::suggested();
    let nsga2 = cmags::mo::Nsga2Config::suggested().with_population(20);

    let observed: Vec<(&str, u64)> = vec![
        (
            "cMA",
            bits_of(
                &mut cmags::cma::CmaEngine::new(&cma_config, &p, seed),
                budget,
            ),
        ),
        ("SA", bits_of(&mut sa.engine(&p, seed), budget)),
        ("Tabu", bits_of(&mut tabu.engine(&p, seed), budget)),
        ("SS-GA", bits_of(&mut ssga.engine(&p, seed), budget)),
        ("Struggle", bits_of(&mut struggle.engine(&p, seed), budget)),
        ("BraunGA", bits_of(&mut braun_ga.engine(&p, seed), budget)),
        ("GSA", bits_of(&mut gsa.engine(&p, seed), budget)),
        (
            "PanmicticMA",
            bits_of(&mut panmictic.engine(&p, seed), budget),
        ),
        (
            "MoCell",
            bits_of(&mut cmags::mo::MoCellEngine::new(&mocell, &p, seed), budget),
        ),
        (
            "NSGA-II",
            bits_of(&mut cmags::mo::Nsga2Engine::new(&nsga2, &p, seed), budget),
        ),
    ];
    for (name, bits) in &observed {
        println!("PIN {name} 0x{bits:016x}");
    }
    let expected: &[(&str, u64)] = &[
        ("cMA", 0x4148_e14f_b8a9_6faa),
        ("SA", 0x4156_676a_2644_4545),
        ("Tabu", 0x4149_27bf_23e6_32e7),
        ("SS-GA", 0x414c_2f18_dc2a_11fc),
        ("Struggle", 0x414c_2f18_dc2a_11fc),
        ("BraunGA", 0x4147_9355_db31_a40c),
        ("GSA", 0x4147_9355_db31_a40c),
        ("PanmicticMA", 0x414c_869b_dd7d_fff0),
        ("MoCell", 0xc300_2c6e_fb36_1ff2),
        ("NSGA-II", 0xc304_6539_16f0_a247),
    ];
    for ((name, bits), (expected_name, expected_bits)) in observed.iter().zip(expected) {
        assert_eq!(name, expected_name);
        assert_eq!(
            *bits, *expected_bits,
            "{name}: λ=0 fitness bits drifted from the pre-λ pin"
        );
    }
}

/// The outcome-level pin: a classic cMA run's (fitness, objectives)
/// round-trips through the facade API unchanged.
fn outcome_bits(outcome: &GaOutcome) -> (u64, u64, u64) {
    (
        outcome.fitness.to_bits(),
        outcome.objectives.makespan.to_bits(),
        outcome.objectives.flowtime.to_bits(),
    )
}

#[test]
fn steady_state_outcome_pins_its_bits() {
    let p = problem();
    let outcome = SteadyStateGa::default()
        .with_stop(StopCondition::children(150))
        .run(&p, 5);
    let (f, mk, ft) = outcome_bits(&outcome);
    println!("PIN ssga-outcome 0x{f:016x} 0x{mk:016x} 0x{ft:016x}");
    assert_eq!(f, 0x414c_2f18_dc2a_11fc);
    assert_eq!(mk, 0x4147_9355_db31_a40c);
    assert_eq!(ft, 0x4185_0130_ef89_ade6);
}

/// Retargeting an explicit λ = 0 objective is *also* the identity — not
/// just the default-constructed problem.
#[test]
fn explicit_lambda_zero_matches_the_default_problem() {
    let p = problem();
    let zero = p.retargeted(Objective::weighted(0.0));
    let classic = CmaConfig::paper()
        .with_stop(StopCondition::children(200))
        .run(&p, 9);
    let retargeted = CmaConfig::paper()
        .with_stop(StopCondition::children(200))
        .run(&zero, 9);
    assert_eq!(classic.schedule, retargeted.schedule);
    assert_eq!(classic.fitness.to_bits(), retargeted.fitness.to_bits());
}

/// The knob actually steers the search: aggregated over seeds (to damp
/// run-to-run noise), the cMA at λ = 1 reaches lower total flowtime
/// than at λ = 0 under the same budget — it is optimising flowtime
/// directly — and its reported fitness is exactly the mean flowtime.
#[test]
fn lambda_one_targets_mean_flowtime() {
    let p = problem();
    let response_problem = p.retargeted(Objective::mean_flowtime());
    let budget = StopCondition::children(800);
    let mut classic_total = 0.0;
    let mut response_total = 0.0;
    for seed in 0..8u64 {
        let classic = CmaConfig::paper().with_stop(budget).run(&p, seed);
        let response = CmaConfig::paper()
            .with_stop(budget)
            .run(&response_problem, seed);
        assert_eq!(
            response.fitness.to_bits(),
            (response.objectives.flowtime / p.nb_machines() as f64).to_bits(),
            "λ=1 fitness must be the pure mean flowtime"
        );
        classic_total += classic.objectives.flowtime;
        response_total += response.objectives.flowtime;
    }
    assert!(
        response_total < classic_total,
        "λ=1 total flowtime ({response_total}) must beat λ=0 ({classic_total})"
    );
}

/// Every scalarised engine accepts a retargeted problem and reports the
/// blended fitness consistently with its reported objectives.
#[test]
fn all_engines_report_consistent_blended_fitness() {
    let p = problem().retargeted(Objective::weighted(0.5));
    let budget = StopCondition::children(120);
    let check = |name: &str, fitness: f64, objectives: Objectives, weights: FitnessWeights| {
        let expected = p.objective().fitness(weights, objectives, p.nb_machines());
        assert_eq!(
            fitness.to_bits(),
            expected.to_bits(),
            "{name}: reported fitness must be the blended scalarisation"
        );
    };
    let cma = CmaConfig::paper().with_stop(budget).run(&p, 3);
    check("cMA", cma.fitness, cma.objectives, p.weights());
    let sa = SimulatedAnnealing::default().with_stop(budget).run(&p, 3);
    check("SA", sa.fitness, sa.objectives, p.weights());
    let ssga = SteadyStateGa::default().with_stop(budget).run(&p, 3);
    check(
        "SS-GA",
        ssga.fitness,
        ssga.objectives,
        FitnessWeights::default(),
    );
    let braun_ga = BraunGa::default().with_stop(budget).run(&p, 3);
    check(
        "BraunGA",
        braun_ga.fitness,
        braun_ga.objectives,
        FitnessWeights::makespan_only(),
    );
}
