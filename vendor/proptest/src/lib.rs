//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no crate registry access, so the workspace
//! vendors a miniature property-testing harness with the same surface
//! syntax as `proptest`: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range / tuple / `Just` / `any` /
//! [`collection::vec`] / [`option::of`] strategies, [`prop_oneof!`], and
//! the [`proptest!`] macro driving a fixed number of seeded cases.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with its assertion message
//!   and the deterministic case seed, but is not minimised;
//! * **deterministic scheduling** — cases derive from a per-test FNV hash
//!   and the case index, so failures reproduce without a persistence file;
//! * string strategies support only the `.{a,b}` regex shape the
//!   workspace uses.
//!
//! `PROPTEST_CASES` in the environment overrides every configured case
//! count (useful to deepen or speed up CI sweeps).

#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::ProptestConfig;

/// Everything the `proptest!` test modules import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a hash of a string — the per-test seed root.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::test_runner::effective_cases(config.cases);
            let root = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(cases) {
                let mut runner_rng = $crate::test_runner::case_rng(root, case);
                $(let $pat = $crate::Strategy::generate(&$strategy, &mut runner_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
