//! NSGA-II baseline (Deb et al. 2002), panmictic.
//!
//! The standard yardstick for bi-objective metaheuristics. Implemented
//! here as the *unstructured* counterpart of [`crate::mocell`]: same
//! encoding, operators and seeding, but a single panmictic population
//! with (rank, crowding) tournament selection and generational
//! elitist truncation — so any quality difference measured against
//! MoCell isolates the effect of the cellular structure, mirroring how
//! the reproduced paper isolates cMA against panmictic GAs.

use std::time::{Duration, Instant};

use cmags_cma::StopCondition;
use cmags_core::engine::{Metaheuristic, RunStats, Runner};
use cmags_core::{evaluate, FitnessWeights, Objectives, Problem, Schedule};
use cmags_heuristics::constructive::ConstructiveKind;
use cmags_heuristics::local_search::LocalSearchKind;
use cmags_heuristics::ops::{Crossover, Mutation};
use cmags_heuristics::perturb;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::archive::MoSolution;
use crate::crowding::crowding_distances;
use crate::indicators::{hypervolume, reference_point};
use crate::mocell::MoIndividual;
use crate::ranking::fronts;

/// Configuration of the NSGA-II baseline.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Population size (and offspring count per generation).
    pub population: usize,
    /// Crossover probability per offspring (clone of the first parent
    /// otherwise).
    pub crossover_rate: f64,
    /// Recombination operator.
    pub crossover: Crossover,
    /// Mutation operator.
    pub mutation: Mutation,
    /// Per-offspring mutation probability.
    pub mutation_rate: f64,
    /// Optional memetic step (`LocalSearchKind::None` = classic
    /// NSGA-II).
    pub local_search: LocalSearchKind,
    /// Local-search iterations per offspring.
    pub ls_iterations: usize,
    /// Scalarisation ladder for the memetic step (ignored when local
    /// search is `None`).
    pub lambda_grid: Vec<f64>,
    /// Heuristic seeding the first individual.
    pub seeding: ConstructiveKind,
    /// Perturbation strength deriving the rest of the population.
    pub perturb_strength: f64,
    /// Stopping condition (children budget and/or wall clock).
    pub stop: StopCondition,
}

impl Nsga2Config {
    /// Textbook defaults: population 100, crossover 0.9, mutation 0.35,
    /// no local search; seeding matches the cMA for a fair comparison.
    #[must_use]
    pub fn suggested() -> Self {
        Self {
            population: 100,
            crossover_rate: 0.9,
            crossover: Crossover::OnePoint,
            mutation: Mutation::Rebalance,
            mutation_rate: 0.35,
            local_search: LocalSearchKind::None,
            ls_iterations: 5,
            lambda_grid: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            seeding: ConstructiveKind::LjfrSjfr,
            perturb_strength: 0.5,
            stop: StopCondition::paper_time(),
        }
    }

    /// Replaces the stopping condition.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Replaces the population size.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_population(mut self, n: usize) -> Self {
        assert!(n >= 2, "NSGA-II needs at least two individuals");
        self.population = n;
        self
    }

    /// Enables the memetic step (making this a memetic NSGA-II).
    #[must_use]
    pub fn with_local_search(mut self, kind: LocalSearchKind) -> Self {
        self.local_search = kind;
        self
    }

    /// Runs the algorithm on `problem` with RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid configurations.
    #[must_use]
    pub fn run(&self, problem: &Problem, seed: u64) -> Nsga2Outcome {
        run(self, problem, seed)
    }

    fn validate(&self) {
        assert!(
            self.population >= 2,
            "NSGA-II needs at least two individuals"
        );
        assert!(
            (0.0..=1.0).contains(&self.crossover_rate) && (0.0..=1.0).contains(&self.mutation_rate),
            "rates must be probabilities"
        );
        assert!(
            !self.lambda_grid.is_empty(),
            "lambda grid must not be empty"
        );
        assert!(
            self.stop.is_bounded(),
            "unbounded run: configure a stopping condition"
        );
    }
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self::suggested()
    }
}

/// Result of one NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Outcome {
    /// The final population's first front (mutually non-dominated,
    /// duplicates removed, ascending by makespan).
    pub front: Vec<MoSolution>,
    /// Generations completed.
    pub generations: u64,
    /// Offspring generated.
    pub children: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// RNG seed of the run.
    pub seed: u64,
}

/// [`Nsga2Config`] as a step-driven [`Metaheuristic`]: each step breeds
/// one offspring; when a full offspring population exists, parents ∪
/// offspring are truncated elitistically and a generation closes.
///
/// Like the cellular MO engine, the scalar reported to the shared
/// runner is the negated hypervolume of the current first front, so
/// "improvement" means the front grew.
pub struct Nsga2Engine<'a> {
    config: &'a Nsga2Config,
    problem: &'a Problem,
    rng: SmallRng,
    ladder: Vec<Problem>,
    population: Vec<MoIndividual>,
    offspring: Vec<MoIndividual>,
    /// Selection metadata of `population` (recomputed per generation).
    rank: Vec<usize>,
    crowding: Vec<f64>,
    /// Fixed hypervolume reference (initial population's worst + 10 %).
    reference: Objectives,
    front_hv: f64,
    generations: u64,
    children: u64,
}

impl<'a> Nsga2Engine<'a> {
    /// Initialises the population (seeded identically to the cellular
    /// engines) and its selection metadata.
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid configurations.
    #[must_use]
    pub fn new(config: &'a Nsga2Config, problem: &'a Problem, seed: u64) -> Self {
        config.validate();
        let mut rng = SmallRng::seed_from_u64(seed);
        let ladder: Vec<Problem> = config
            .lambda_grid
            .iter()
            .map(|&lambda| problem.reweighted(FitnessWeights::new(lambda)))
            .collect();

        let seed_schedule = config.seeding.build_seeded(problem, &mut rng);
        let mut population = Vec::with_capacity(config.population);
        population.push(MoIndividual::new(problem, seed_schedule.clone()));
        for _ in 1..config.population {
            let perturbed = perturb(problem, &seed_schedule, config.perturb_strength, &mut rng);
            population.push(MoIndividual::new(problem, perturbed));
        }

        let objectives: Vec<Objectives> = population.iter().map(MoIndividual::objectives).collect();
        let reference = reference_point(&[&objectives], 0.10);
        let (rank, crowding) = rank_and_crowding(&objectives);
        let front_hv = first_front_hypervolume(&objectives, &rank, reference);
        Self {
            config,
            problem,
            rng,
            ladder,
            offspring: Vec::with_capacity(config.population),
            population,
            rank,
            crowding,
            reference,
            front_hv,
            generations: 0,
            children: 0,
        }
    }

    /// Consumes the engine into the classic outcome report: the
    /// non-dominated subset of the final population, deduplicated and
    /// ascending by makespan.
    #[must_use]
    pub fn into_outcome(self, stats: RunStats, seed: u64) -> Nsga2Outcome {
        let objectives: Vec<Objectives> = self
            .population
            .iter()
            .map(MoIndividual::objectives)
            .collect();
        let mut front: Vec<MoSolution> = fronts(&objectives)
            .into_iter()
            .next()
            .unwrap_or_default()
            .into_iter()
            .map(|i| MoSolution {
                schedule: self.population[i].schedule.clone(),
                objectives: objectives[i],
            })
            .collect();
        front.sort_by(|a, b| {
            a.objectives
                .makespan
                .total_cmp(&b.objectives.makespan)
                .then(a.objectives.flowtime.total_cmp(&b.objectives.flowtime))
        });
        front.dedup_by(|a, b| a.objectives == b.objectives);

        Nsga2Outcome {
            front,
            generations: stats.iterations,
            children: stats.children,
            elapsed: stats.elapsed,
            seed,
        }
    }
}

impl Metaheuristic for Nsga2Engine<'_> {
    fn name(&self) -> &'static str {
        "NSGA-II"
    }

    fn step(&mut self) {
        let first = crowded_tournament(&self.rank, &self.crowding, &mut self.rng);
        let child_schedule = if self.rng.gen::<f64>() < self.config.crossover_rate {
            let second = crowded_tournament(&self.rank, &self.crowding, &mut self.rng);
            self.config.crossover.apply(
                &self.population[first].schedule,
                &self.population[second].schedule,
                &mut self.rng,
            )
        } else {
            self.population[first].schedule.clone()
        };
        let mut child = MoIndividual::new(self.problem, child_schedule);
        if self.rng.gen::<f64>() < self.config.mutation_rate {
            self.config.mutation.apply(
                self.problem,
                &mut child.schedule,
                &mut child.eval,
                &mut self.rng,
            );
        }
        if self.config.local_search != LocalSearchKind::None {
            let guide = &self.ladder[self.rng.gen_range(0..self.ladder.len())];
            self.config.local_search.run(
                guide,
                &mut child.schedule,
                &mut child.eval,
                &mut self.rng,
                self.config.ls_iterations,
            );
        }
        self.children += 1;
        self.offspring.push(child);

        if self.offspring.len() == self.config.population {
            // Elitist truncation of parents ∪ offspring.
            let mut combined = std::mem::take(&mut self.population);
            combined.append(&mut self.offspring);
            self.population = truncate(combined, self.config.population);
            self.generations += 1;

            let objectives: Vec<Objectives> = self
                .population
                .iter()
                .map(MoIndividual::objectives)
                .collect();
            let (rank, crowding) = rank_and_crowding(&objectives);
            self.front_hv = first_front_hypervolume(&objectives, &rank, self.reference);
            self.rank = rank;
            self.crowding = crowding;
        }
    }

    fn iterations(&self) -> u64 {
        self.generations
    }

    fn children(&self) -> u64 {
        self.children
    }

    fn best_fitness(&self) -> f64 {
        -self.front_hv
    }

    /// Objectives of the first-front member optimal under the problem's
    /// active objective (λ-blended fitness) — a realizable point
    /// matching [`Metaheuristic::best_schedule`], so racing harnesses
    /// rank the engine by a schedule it can actually surrender.
    fn best_objectives(&self) -> Objectives {
        match self.front_best() {
            Some(best) => self.population[best].objectives(),
            None => crate::mocell::ideal_point(&[]),
        }
    }

    /// The first-front member optimal under the active λ — NSGA-II's
    /// elitist population *is* its archive, so extraction mirrors
    /// MoCell's archive-member rule.
    fn best_schedule(&self) -> Option<&Schedule> {
        self.front_best()
            .map(|best| &self.population[best].schedule)
    }

    /// Archive-aware warm start over the elitist population: the offer
    /// is rejected when any member dominates (or duplicates) it;
    /// otherwise it displaces the worst member under the crowded
    /// comparison — highest front rank, smallest crowding distance
    /// within that rank, ties keeping the earliest index — and the
    /// selection metadata is rebuilt. No RNG is touched, so injection
    /// never perturbs determinism; `inject(best_schedule())` is a no-op
    /// because the member duplicates itself.
    fn inject(&mut self, schedule: &Schedule) -> bool {
        let objectives = evaluate(self.problem, schedule);
        let rejected = self.population.iter().any(|member| {
            matches!(
                crate::dominance::compare(member.objectives(), objectives),
                crate::dominance::ParetoOrdering::Dominates
                    | crate::dominance::ParetoOrdering::Equal
            )
        });
        if rejected {
            return false;
        }
        let victim = (0..self.population.len())
            .max_by(|&a, &b| {
                self.rank[a]
                    .cmp(&self.rank[b])
                    .then(self.crowding[b].total_cmp(&self.crowding[a]))
                    .then(b.cmp(&a))
            })
            .expect("population is never empty");
        self.population[victim] = MoIndividual::new(self.problem, schedule.clone());
        let all: Vec<Objectives> = self
            .population
            .iter()
            .map(MoIndividual::objectives)
            .collect();
        let (rank, crowding) = rank_and_crowding(&all);
        self.front_hv = first_front_hypervolume(&all, &rank, self.reference);
        self.rank = rank;
        self.crowding = crowding;
        true
    }
}

impl Nsga2Engine<'_> {
    /// Index of the rank-0 population member minimising the problem's
    /// active scalarised fitness (ties keep the earliest index).
    fn front_best(&self) -> Option<usize> {
        (0..self.population.len())
            .filter(|&i| self.rank[i] == 0)
            .min_by(|&a, &b| {
                self.problem
                    .fitness(self.population[a].objectives())
                    .total_cmp(&self.problem.fitness(self.population[b].objectives()))
                    .then(a.cmp(&b))
            })
    }
}

/// Hypervolume of the rank-0 subset of `objectives`.
fn first_front_hypervolume(
    objectives: &[Objectives],
    rank: &[usize],
    reference: Objectives,
) -> f64 {
    let front: Vec<Objectives> = objectives
        .iter()
        .zip(rank)
        .filter(|(_, &r)| r == 0)
        .map(|(&o, _)| o)
        .collect();
    hypervolume(&front, reference)
}

/// Runs the configured NSGA-II through the shared runner (see
/// [`Nsga2Config::run`]).
#[must_use]
pub fn run(config: &Nsga2Config, problem: &Problem, seed: u64) -> Nsga2Outcome {
    // lint:allow(no-wall-clock-in-sim): legit wall-clock budget anchor — same contract as the ga engines: opt-in time limit plus informational elapsed, never a tick-domain input.
    let start = Instant::now();
    let mut engine = Nsga2Engine::new(config, problem, seed);
    let stats = Runner::new(config.stop).run_from(start, &mut engine, &mut []);
    engine.into_outcome(stats, seed)
}

/// Front rank and per-front crowding distance of every point.
fn rank_and_crowding(objectives: &[Objectives]) -> (Vec<usize>, Vec<f64>) {
    let mut rank = vec![0usize; objectives.len()];
    let mut crowding = vec![0.0f64; objectives.len()];
    for (depth, front) in fronts(objectives).iter().enumerate() {
        let front_objectives: Vec<Objectives> = front.iter().map(|&i| objectives[i]).collect();
        let distances = crowding_distances(&front_objectives);
        for (&i, d) in front.iter().zip(distances) {
            rank[i] = depth;
            crowding[i] = d;
        }
    }
    (rank, crowding)
}

/// Binary tournament under the crowded-comparison operator: lower rank
/// wins; equal ranks prefer the larger crowding distance; full ties
/// break by coin flip.
fn crowded_tournament(rank: &[usize], crowding: &[f64], rng: &mut dyn RngCore) -> usize {
    let a = rng.gen_range(0..rank.len());
    let b = rng.gen_range(0..rank.len());
    if rank[a] != rank[b] {
        return if rank[a] < rank[b] { a } else { b };
    }
    match crowding[a].total_cmp(&crowding[b]) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => {
            if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
    }
}

/// NSGA-II elitist truncation: fill front by front; the first front
/// that does not fit is sorted by descending crowding distance and cut.
fn truncate(combined: Vec<MoIndividual>, capacity: usize) -> Vec<MoIndividual> {
    debug_assert!(combined.len() >= capacity);
    let objectives: Vec<Objectives> = combined.iter().map(MoIndividual::objectives).collect();
    let mut keep: Vec<usize> = Vec::with_capacity(capacity);
    for front in fronts(&objectives) {
        if keep.len() + front.len() <= capacity {
            keep.extend(front);
            if keep.len() == capacity {
                break;
            }
        } else {
            let mut partial = front;
            crate::crowding::sort_by_crowding(&objectives, &mut partial);
            partial.truncate(capacity - keep.len());
            keep.extend(partial);
            break;
        }
    }
    // Take the selected individuals out of `combined` without cloning
    // the unselected ones.
    let mut slots: Vec<Option<MoIndividual>> = combined.into_iter().map(Some).collect();
    keep.into_iter()
        .map(|i| slots[i].take().expect("truncation indices are unique"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_s_hilo.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(64, 8), 0))
    }

    fn quick() -> Nsga2Config {
        Nsga2Config::suggested()
            .with_population(20)
            .with_stop(StopCondition::children(200))
    }

    #[test]
    fn respects_children_budget() {
        let outcome = quick().run(&problem(), 1);
        assert_eq!(outcome.children, 200);
        assert_eq!(outcome.generations, 10, "200 children / 20 per generation");
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let p = problem();
        let outcome = quick().run(&p, 2);
        assert!(!outcome.front.is_empty());
        for (i, a) in outcome.front.iter().enumerate() {
            for b in &outcome.front[i + 1..] {
                assert!(
                    !crate::dominance::dominates(a.objectives, b.objectives)
                        && !crate::dominance::dominates(b.objectives, a.objectives),
                    "front members must be incomparable"
                );
            }
            let fresh = cmags_core::evaluate(&p, &a.schedule);
            assert_eq!(fresh, a.objectives, "front schedules re-evaluate exactly");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = quick().run(&p, 9);
        let b = quick().run(&p, 9);
        let objs = |o: &Nsga2Outcome| -> Vec<Objectives> {
            o.front.iter().map(|s| s.objectives).collect()
        };
        assert_eq!(objs(&a), objs(&b));
    }

    #[test]
    fn memetic_variant_runs() {
        let outcome = quick()
            .with_local_search(LocalSearchKind::Lmcts)
            .run(&problem(), 3);
        assert_eq!(outcome.children, 200);
        assert!(!outcome.front.is_empty());
    }

    #[test]
    fn truncation_keeps_best_front_intact() {
        let p = problem();
        // Population of 6, truncate to 3: all front-0 members must survive
        // if they fit.
        let mut individuals = Vec::new();
        for m in 0..6u32 {
            let schedule = cmags_core::Schedule::uniform(p.nb_jobs(), m % 8);
            individuals.push(MoIndividual::new(&p, schedule));
        }
        let objectives: Vec<Objectives> =
            individuals.iter().map(MoIndividual::objectives).collect();
        let front0: Vec<Objectives> = fronts(&objectives)
            .into_iter()
            .next()
            .unwrap()
            .into_iter()
            .map(|i| objectives[i])
            .collect();
        let kept = truncate(individuals, 3.max(front0.len()));
        let kept_objs: Vec<Objectives> = kept.iter().map(MoIndividual::objectives).collect();
        for f in &front0 {
            assert!(kept_objs.contains(f), "front-0 member lost in truncation");
        }
    }

    #[test]
    #[should_panic(expected = "at least two individuals")]
    fn tiny_population_rejected() {
        let _ = Nsga2Config::suggested().with_population(1);
    }

    #[test]
    fn best_schedule_minimises_the_active_fitness_over_the_front() {
        use cmags_core::engine::Runner;
        use cmags_core::Objective;
        let p = problem().retargeted(Objective::mean_flowtime());
        let config = quick();
        let mut engine = Nsga2Engine::new(&config, &p, 2);
        let _ = Runner::new(StopCondition::children(100)).run_traced(&mut engine);
        let best = engine.best_schedule().expect("front is never empty");
        let best_fitness = p.fitness(cmags_core::evaluate(&p, best));
        let front_min = engine
            .population
            .iter()
            .zip(&engine.rank)
            .filter(|(_, &r)| r == 0)
            .map(|(i, _)| p.fitness(i.objectives()))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best_fitness.to_bits(), front_min.to_bits());
        assert_eq!(engine.best_objectives(), cmags_core::evaluate(&p, best));
    }

    #[test]
    fn inject_of_own_best_is_a_noop() {
        use cmags_core::engine::Runner;
        let p = problem();
        let config = quick();
        let mut engine = Nsga2Engine::new(&config, &p, 4);
        let _ = Runner::new(StopCondition::children(60)).run_traced(&mut engine);
        let before: Vec<Objectives> = engine
            .population
            .iter()
            .map(MoIndividual::objectives)
            .collect();
        let elite = engine.best_schedule().expect("front non-empty").clone();
        assert!(!engine.inject(&elite), "duplicate offer must be rejected");
        let after: Vec<Objectives> = engine
            .population
            .iter()
            .map(MoIndividual::objectives)
            .collect();
        assert_eq!(before, after, "population unchanged");
    }

    #[test]
    fn inject_displaces_the_worst_crowding_member() {
        // A freshly initialised population (no search yet) cannot
        // dominate a schedule refined by a dedicated scalarised search.
        let p = problem();
        let config = quick();
        let mut engine = Nsga2Engine::new(&config, &p, 6);
        let refined = cmags_cma::CmaConfig::paper()
            .with_stop(StopCondition::children(600))
            .run(&p, 13)
            .schedule;
        let size = engine.population.len();
        assert!(engine.inject(&refined), "elite must displace a member");
        assert_eq!(engine.population.len(), size, "population size preserved");
        assert!(
            engine.population.iter().any(|m| m.schedule == refined),
            "the elite must be present after injection"
        );
        // Selection metadata was rebuilt consistently.
        assert_eq!(engine.rank.len(), size);
        assert_eq!(engine.crowding.len(), size);
        assert!(engine.rank.contains(&0));
    }
}
