//! Scenario-family benchmark: the dynamic-grid scheduler roster swept
//! across the whole [`ScenarioFamily`] catalog, with a tunable-objective
//! (λ) axis for the metaheuristic schedulers.
//!
//! Three layers:
//!
//! * `scenario_sim_*` timing groups — wall-clock cost of one full
//!   discrete-event run under a constructive scheduler (criterion), the
//!   number to watch when touching the event loop (the O(1)
//!   activation re-arm lives on this path);
//! * a quality sweep printed as `scenario-quality` /
//!   `scenario-winner` lines (and recorded in `BENCH_scenarios.json`):
//!   per family × scheduler, the realized makespan and mean response
//!   averaged over seeds. The per-family *winner* is ranked on
//!   realized makespan — the paper's primary objective (λ = 0.75) —
//!   with the response ranking printed alongside; the point of the
//!   catalog is that the winner is *not* the same scheduler in every
//!   family.
//! * a λ sweep printed as `scenario-lambda` lines: per family × λ, the
//!   best metaheuristic mean response versus Min-Min's (the response
//!   champion of every family at λ = 0) — measuring whether the
//!   response-targeted objective closes that gap.
//!
//! Set `SCENARIO_BENCH_QUICK=1` for the CI smoke configuration (one
//! seed, small per-activation budgets, two samples, two λ values).

use std::collections::{BTreeMap, BTreeSet};
use std::hint::black_box;

use cmags_bench::experiments::dynamic::scenario_sweep;
use cmags_cma::StopCondition;
use cmags_core::Objective;
use cmags_gridsim::scheduler::HeuristicScheduler;
use cmags_gridsim::{ScenarioFamily, SimConfig, Simulation};
use cmags_heuristics::constructive::ConstructiveKind;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_scenarios(c: &mut Criterion) {
    let quick = std::env::var_os("SCENARIO_BENCH_QUICK").is_some();
    let (budget, seeds): (u64, &[u64]) = if quick {
        (200, &[1])
    } else {
        (2_000, &[1, 2, 3])
    };
    // The λ axis: classic, plus the pure-response target (and the
    // midpoint outside quick mode).
    let lambdas: Vec<Objective> = if quick {
        vec![Objective::classic(), Objective::mean_flowtime()]
    } else {
        vec![
            Objective::classic(),
            Objective::weighted(0.5),
            Objective::mean_flowtime(),
        ]
    };

    // --- Timing: the raw event loop under a cheap scheduler. ---
    let mut group = c.benchmark_group("scenario_sim");
    group.sample_size(if quick { 2 } else { 10 });
    for family in [ScenarioFamily::Calm, ScenarioFamily::Bursty] {
        group.bench_function(format!("{family}_minmin"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut s = HeuristicScheduler::new(ConstructiveKind::MinMin);
                let report = Simulation::new(SimConfig::from_family(family), seed).run(&mut s);
                black_box(report.flowtime)
            });
        });
    }
    group.finish();

    // --- Quality: every family × scheduler × λ, averaged over seeds. ---
    let stop = StopCondition::children(budget);
    // (family, scheduler) -> (λ, mean makespan, mean response, mean p95
    // response, mean p99 response); the scheduler name is λ-tagged for
    // retargeted metaheuristics, so λ variants land in distinct cells.
    type QualityCell = (f64, f64, f64, f64, f64);
    let mut totals: BTreeMap<(String, String), QualityCell> = BTreeMap::new();
    for &seed in seeds {
        for cell in scenario_sweep(&ScenarioFamily::ALL, seed, stop, &lambdas) {
            let entry = totals
                .entry((cell.family.name().to_owned(), cell.scheduler))
                .or_insert((cell.lambda, 0.0, 0.0, 0.0, 0.0));
            entry.1 += cell.realized_makespan / seeds.len() as f64;
            entry.2 += cell.mean_response / seeds.len() as f64;
            entry.3 += cell.p95_response / seeds.len() as f64;
            entry.4 += cell.p99_response / seeds.len() as f64;
        }
    }
    let mut winners: BTreeMap<&str, String> = BTreeMap::new();
    for family in ScenarioFamily::ALL {
        let mut field: Vec<(&String, f64, f64, f64, f64, f64)> = totals
            .iter()
            .filter(|((f, _), _)| f == family.name())
            .map(
                |((_, scheduler), &(lambda, makespan, response, p95, p99))| {
                    (scheduler, lambda, makespan, response, p95, p99)
                },
            )
            .collect();
        // Rank on realized makespan, the paper's primary objective —
        // over the classic (λ = 0) roster only, so the winner lines
        // stay comparable across λ-sweep configurations.
        field.sort_by(|a, b| a.2.total_cmp(&b.2));
        for (scheduler, lambda, makespan, response, p95, p99) in &field {
            println!(
                "scenario-quality family={} scheduler={scheduler} lambda={lambda} makespan={makespan:.1} mean_response={response:.1} p95_response={p95:.1} p99_response={p99:.1}",
                family.name()
            );
        }
        let classic: Vec<&(&String, f64, f64, f64, f64, f64)> = field
            .iter()
            .filter(|&&(_, lambda, _, _, _, _)| lambda == 0.0)
            .collect();
        let (best, _, best_makespan, ..) = *classic[0];
        // The roster always fields several schedulers, but degrade
        // gracefully if it is ever trimmed to one.
        let runner_up_delta_pct = classic.get(1).map_or(0.0, |&&(_, _, m, ..)| {
            (m - best_makespan) / best_makespan * 100.0
        });
        let best_response = classic
            .iter()
            .min_by(|a, b| a.3.total_cmp(&b.3))
            .expect("non-empty field");
        println!(
            "scenario-winner family={} winner={best} makespan={best_makespan:.1} runner_up_delta_pct={runner_up_delta_pct:+.2} response_winner={}",
            family.name(),
            best_response.0,
        );
        winners.insert(family.name(), best.clone());

        // --- The λ axis: per response weight, the best metaheuristic
        // mean response versus Min-Min's. ---
        let minmin_response = field
            .iter()
            .find(|(name, ..)| name.as_str() == "Min-Min")
            .expect("Min-Min always races")
            .3;
        let mut swept: Vec<f64> = field.iter().map(|&(_, lambda, ..)| lambda).collect();
        swept.sort_by(f64::total_cmp);
        swept.dedup();
        for lambda in swept {
            let best_meta = field
                .iter()
                .filter(|&&(name, l, ..)| {
                    l == lambda && (name.starts_with("cMA") || name.starts_with("Portfolio"))
                })
                .min_by(|a, b| a.3.total_cmp(&b.3));
            let Some(&(name, _, _, response, ..)) = best_meta else {
                continue;
            };
            let gap_pct = (response - minmin_response) / minmin_response * 100.0;
            println!(
                "scenario-lambda family={} lambda={lambda} best_meta={name} mean_response={response:.1} minmin_response={minmin_response:.1} gap_pct={gap_pct:+.2}",
                family.name()
            );
        }
    }
    let distinct: BTreeSet<&str> = winners.values().map(String::as_str).collect();
    println!(
        "scenario-summary budget={budget} seeds={} lambdas={} winners={} distinct_winners={}",
        seeds.len(),
        lambdas
            .iter()
            .map(|o| o.lambda().to_string())
            .collect::<Vec<_>>()
            .join(","),
        winners
            .iter()
            .map(|(family, winner)| format!("{family}={winner}"))
            .collect::<Vec<_>>()
            .join(","),
        distinct.len()
    );
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
