//! Runs the complete evaluation — every figure, table, the robustness
//! study, the ablations and the dynamic experiment — in one invocation.
//!
//! With default (quick) budgets this takes a few minutes; with `--paper`
//! it reproduces the full 10-runs × 90 s protocol of the paper.

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::figs::{run_figure, Figure};
use cmags_bench::experiments::{
    ablation, baselines, cvb_exp, dynamic, mo_front, pareto_exp, robustness, significance, tables,
};
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    let started = std::time::Instant::now();

    for figure in [
        Figure::LocalSearch,
        Figure::Neighborhoods,
        Figure::Selection,
        Figure::SweepOrders,
    ] {
        eprintln!("[full_eval] figure {} ...", figure.number());
        let (summary, raw) = run_figure(&ctx, figure);
        emit(&ctx, &[summary, raw]);
    }

    eprintln!("[full_eval] table 2 ...");
    emit(&ctx, &[tables::table2(&ctx)]);
    eprintln!("[full_eval] table 3 ...");
    emit(&ctx, &[tables::table3(&ctx)]);
    eprintln!("[full_eval] table 4 ...");
    emit(&ctx, &[tables::table4(&ctx)]);
    eprintln!("[full_eval] table 5 ...");
    emit(&ctx, &[tables::table5(&ctx)]);

    eprintln!("[full_eval] robustness ...");
    emit(&ctx, &[robustness::robustness(&ctx)]);

    eprintln!("[full_eval] ablations ...");
    emit(&ctx, &ablation::all(&ctx));

    eprintln!("[full_eval] pareto lambda scan ...");
    emit(&ctx, &[pareto_exp::pareto(&ctx)]);

    eprintln!("[full_eval] multi-objective front comparison ...");
    emit(&ctx, &[mo_front::mo_front(&ctx)]);

    eprintln!("[full_eval] baseline line-up ...");
    let (detail, aggregate) = baselines::baselines(&ctx);
    emit(&ctx, &[detail, aggregate]);

    eprintln!("[full_eval] significance analysis ...");
    emit(&ctx, &[significance::significance(&ctx)]);

    eprintln!("[full_eval] cvb generalisation ...");
    emit(&ctx, &[cvb_exp::cvb_generalisation(&ctx)]);

    eprintln!("[full_eval] dynamic grid ...");
    emit(&ctx, &dynamic::dynamic(&ctx));

    eprintln!(
        "[full_eval] done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
