//! Runs the multi-objective lambda-scan experiment (paper §6 future
//! work): one Pareto front per consistency class.

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::pareto_exp::pareto;
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    emit(&ctx, &[pareto(&ctx)]);
}
