//! Workload and heterogeneity model of the dynamic grid.
//!
//! Jobs and machines carry the same range-based characteristics as the
//! static Braun classes (`cmags-etc`), so a snapshot of the dynamic system
//! *is* a static benchmark instance:
//!
//! * job `j` has a baseline workload `B_j ~ U(1, φ_task)`;
//! * machine `m` has a consistent slowness factor `s_m ~ U(1, φ_mach)`;
//! * the ETC of `(j, m)` depends on the consistency class:
//!   - **consistent**: `B_j · s_m` — machine orderings agree everywhere;
//!   - **inconsistent**: `B_j · u(j, m)` with `u(j, m)` uniform on the
//!     half-open `[1, φ_mach)`, drawn from a deterministic per-pair hash;
//!   - **semi-consistent**: even-indexed machines behave consistently,
//!     odd-indexed machines draw per-pair noise.
//!
//! The per-pair noise uses a splitmix64 hash of `(world_seed, job,
//! machine)`, so the ETC of a pair is stable across activations without
//! storing a matrix over an unbounded job stream.

use cmags_etc::{braun, Consistency, InstanceClass};
use rand::rngs::SmallRng;
use rand::Rng;

/// Static characteristics of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Job identifier.
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Baseline workload `B_j`.
    pub baseline: f64,
}

/// Static characteristics of one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Machine identifier.
    pub id: u64,
    /// Consistent slowness factor `s_m` (1 = fastest possible).
    pub slowness: f64,
}

/// The heterogeneity/consistency world shared by all draws.
#[derive(Debug, Clone, Copy)]
pub struct World {
    /// Consistency class of the dynamic grid.
    pub consistency: Consistency,
    /// Task heterogeneity range `φ_task`.
    pub phi_task: f64,
    /// Machine heterogeneity range `φ_mach`.
    pub phi_mach: f64,
    /// Seed of the per-pair noise hash.
    pub noise_seed: u64,
}

impl World {
    /// Builds a world from a benchmark class (dimensions are ignored; the
    /// dynamic system sizes itself).
    #[must_use]
    pub fn from_class(class: InstanceClass, noise_seed: u64) -> Self {
        let (phi_task, phi_mach) = braun::ranges(class);
        Self {
            consistency: class.consistency,
            phi_task,
            phi_mach,
            noise_seed,
        }
    }

    /// Default world: consistent, high/high heterogeneity.
    #[must_use]
    pub fn hihi_consistent(noise_seed: u64) -> Self {
        Self {
            consistency: Consistency::Consistent,
            phi_task: braun::PHI_TASK_HI,
            phi_mach: braun::PHI_MACH_HI,
            noise_seed,
        }
    }

    /// Draws a job baseline.
    pub fn draw_baseline(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(1.0..=self.phi_task)
    }

    /// Draws a machine slowness factor.
    pub fn draw_slowness(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(1.0..=self.phi_mach)
    }

    /// The ETC of a `(job, machine)` pair under this world's consistency
    /// class. Deterministic: repeated calls always agree.
    #[must_use]
    pub fn etc(&self, job: &JobSpec, machine: &MachineSpec) -> f64 {
        let multiplier = match self.consistency {
            Consistency::Consistent => machine.slowness,
            Consistency::Inconsistent => self.pair_noise(job.id, machine.id),
            Consistency::SemiConsistent => {
                if machine.id.is_multiple_of(2) {
                    machine.slowness
                } else {
                    self.pair_noise(job.id, machine.id)
                }
            }
        };
        job.baseline * multiplier
    }

    /// Per-pair multiplier from a splitmix64 hash, uniform on the
    /// half-open `[1, φ_mach)`: the unit draw is `[0, 1)`, so `φ_mach`
    /// itself is never attained.
    fn pair_noise(&self, job: u64, machine: u64) -> f64 {
        let mut x = self
            .noise_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(job.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(machine.wrapping_mul(0x94d0_49bb_1331_11eb));
        // splitmix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + unit * (self.phi_mach - 1.0)
    }
}

/// Job arrival process of the dynamic grid.
///
/// Generalizes the original stationary Poisson source into a family of
/// stochastic arrival models. A process is a pure *description*; the
/// simulator drives it through a stateful [`ArrivalGen`], so cloning a
/// [`crate::SimConfig`] never aliases generator state and every run is
/// deterministic per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Stationary Poisson: exponential inter-arrival gaps at `rate`
    /// (jobs per simulated second). The seed model.
    Poisson {
        /// Mean arrivals per simulated second.
        rate: f64,
    },
    /// Bursty on/off Markov-modulated Poisson process: the source
    /// alternates between a quiet phase emitting at `base_rate` and a
    /// burst phase emitting at `burst_rate`, with exponentially
    /// distributed phase dwell times. Models batch users dumping work
    /// in correlated bursts.
    Mmpp {
        /// Arrival rate of the quiet phase (may be zero: pure on/off).
        base_rate: f64,
        /// Arrival rate of the burst phase (must exceed `base_rate`).
        burst_rate: f64,
        /// Mean dwell time of the quiet phase, simulated seconds.
        mean_off: f64,
        /// Mean dwell time of the burst phase, simulated seconds.
        mean_on: f64,
    },
    /// Diurnal sinusoidal-rate Poisson process:
    /// `rate(t) = base_rate · (1 + amplitude · sin(2πt / period))`,
    /// sampled by Lewis–Shedler thinning against the peak rate. Models
    /// day/night load cycles on a utility grid.
    Diurnal {
        /// Mean arrival rate (the sinusoid's midline).
        base_rate: f64,
        /// Relative swing in `[0, 1]`; `1` silences the trough entirely.
        amplitude: f64,
        /// Cycle length in simulated seconds.
        period: f64,
    },
    /// Flash crowd: a background Poisson stream at `base_rate` plus
    /// rare spike events (Poisson at `spike_rate`) that each deliver
    /// `burst` jobs at the same instant. Models deadline stampedes and
    /// workflow fan-outs hitting the queue at once.
    FlashCrowd {
        /// Background arrival rate.
        base_rate: f64,
        /// Rate of spike events.
        spike_rate: f64,
        /// Jobs delivered simultaneously per spike (≥ 1).
        burst: u32,
    },
}

impl ArrivalProcess {
    /// Checks the process parameters.
    ///
    /// # Errors
    ///
    /// Rejects non-positive rates/periods, an MMPP whose burst rate
    /// does not exceed its base rate, an out-of-range diurnal
    /// amplitude, or an empty flash-crowd burst.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::{require_non_negative, require_positive, ConfigError};
        match *self {
            Self::Poisson { rate } => {
                require_positive("arrival rate", rate)?;
            }
            Self::Mmpp {
                base_rate,
                burst_rate,
                mean_off,
                mean_on,
            } => {
                require_non_negative("MMPP base rate", base_rate)?;
                if burst_rate <= base_rate || burst_rate.is_nan() {
                    return Err(ConfigError::BurstNotAboveBase {
                        base: base_rate,
                        burst: burst_rate,
                    });
                }
                require_positive("MMPP phase dwell time", mean_off)?;
                require_positive("MMPP phase dwell time", mean_on)?;
            }
            Self::Diurnal {
                base_rate,
                amplitude,
                period,
            } => {
                require_positive("diurnal base rate", base_rate)?;
                if !(0.0..=1.0).contains(&amplitude) {
                    return Err(ConfigError::OutOfRange {
                        what: "diurnal amplitude",
                        bounds: "[0, 1]",
                        got: amplitude,
                    });
                }
                require_positive("diurnal period", period)?;
            }
            Self::FlashCrowd {
                base_rate,
                spike_rate,
                burst,
            } => {
                require_positive("flash-crowd base rate", base_rate)?;
                require_positive("flash-crowd spike rate", spike_rate)?;
                if burst == 0 {
                    return Err(ConfigError::ZeroCount {
                        what: "flash-crowd burst",
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds the stateful per-run generator for this process.
    ///
    /// # Panics
    ///
    /// Panics on an invalid process — validate through
    /// [`crate::SimConfig::validate`] first to get a typed error.
    #[must_use]
    pub fn generator(self) -> ArrivalGen {
        self.validate().unwrap_or_else(|e| panic!("{e}"));
        ArrivalGen {
            process: self,
            // The MMPP flips phase whenever the dwell hits zero, so
            // starting "on" with nothing left makes the first drawn
            // phase the quiet one.
            bursting: true,
            phase_left: 0.0,
            burst_left: 0,
            next_spike: None,
        }
    }
}

/// Stateful arrival generator of one simulation run.
///
/// `next_gap(now, rng)` returns the gap from `now` to the next arrival;
/// a zero gap means the next job lands at the same instant (flash-crowd
/// spikes). All randomness flows through the caller's RNG, so runs are
/// deterministic per seed.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    /// MMPP: whether the source is in its burst phase.
    bursting: bool,
    /// MMPP: simulated time left in the current phase.
    phase_left: f64,
    /// Flash crowd: jobs still due at the current spike instant.
    burst_left: u32,
    /// Flash crowd: absolute time of the next spike event.
    next_spike: Option<f64>,
}

impl ArrivalGen {
    /// Draws the gap from `now` to the next job arrival.
    pub fn next_gap(&mut self, now: f64, rng: &mut SmallRng) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate } => exp_gap(rng, rate),
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_off,
                mean_on,
            } => {
                let mut offset = 0.0;
                loop {
                    if self.phase_left <= 0.0 {
                        self.bursting = !self.bursting;
                        let mean = if self.bursting { mean_on } else { mean_off };
                        self.phase_left = exp_gap(rng, 1.0 / mean);
                        continue;
                    }
                    let rate = if self.bursting { burst_rate } else { base_rate };
                    if rate <= 0.0 {
                        // A silent phase passes with no arrival.
                        offset += self.phase_left;
                        self.phase_left = 0.0;
                        continue;
                    }
                    let gap = exp_gap(rng, rate);
                    if gap <= self.phase_left {
                        self.phase_left -= gap;
                        return offset + gap;
                    }
                    offset += self.phase_left;
                    self.phase_left = 0.0;
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period,
            } => {
                // Lewis–Shedler thinning against the peak rate.
                let peak = base_rate * (1.0 + amplitude);
                let mut t = now;
                loop {
                    t += exp_gap(rng, peak);
                    let phase = std::f64::consts::TAU * t / period;
                    let rate = base_rate * (1.0 + amplitude * phase.sin());
                    let u: f64 = rng.gen();
                    if u * peak < rate {
                        return t - now;
                    }
                }
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                spike_rate,
                burst,
            } => {
                if self.burst_left > 0 {
                    self.burst_left -= 1;
                    return 0.0;
                }
                let next_spike = match self.next_spike {
                    Some(t) => t,
                    None => {
                        let t = now + exp_gap(rng, spike_rate);
                        self.next_spike = Some(t);
                        t
                    }
                };
                let base_gap = exp_gap(rng, base_rate);
                if now + base_gap < next_spike {
                    return base_gap;
                }
                // The spike fires first: `burst` jobs land at its
                // instant — this one now, the rest via zero gaps.
                self.burst_left = burst - 1;
                self.next_spike = Some(next_spike + exp_gap(rng, spike_rate));
                (next_spike - now).max(0.0)
            }
        }
    }
}

/// Exponential inter-event gap with mean `1 / rate`.
pub(crate) fn exp_gap(rng: &mut SmallRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    // Inverse CDF of Exp(rate); clamp the uniform away from 0.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn job(id: u64, baseline: f64) -> JobSpec {
        JobSpec {
            id,
            arrival: 0.0,
            baseline,
        }
    }

    fn machine(id: u64, slowness: f64) -> MachineSpec {
        MachineSpec { id, slowness }
    }

    #[test]
    fn consistent_world_preserves_machine_order() {
        let world = World::hihi_consistent(1);
        let fast = machine(0, 2.0);
        let slow = machine(1, 9.0);
        for id in 0..50 {
            let j = job(id, 10.0 + id as f64);
            assert!(world.etc(&j, &fast) < world.etc(&j, &slow));
        }
    }

    #[test]
    fn inconsistent_world_breaks_machine_order() {
        let world = World {
            consistency: Consistency::Inconsistent,
            ..World::hihi_consistent(2)
        };
        let a = machine(0, 2.0);
        let b = machine(1, 9.0);
        let mut a_wins = 0;
        let mut b_wins = 0;
        for id in 0..200 {
            let j = job(id, 100.0);
            if world.etc(&j, &a) < world.etc(&j, &b) {
                a_wins += 1;
            } else {
                b_wins += 1;
            }
        }
        assert!(a_wins > 0 && b_wins > 0, "both machines must win sometimes");
    }

    #[test]
    fn semiconsistent_even_machines_are_ordered() {
        let world = World {
            consistency: Consistency::SemiConsistent,
            ..World::hihi_consistent(3)
        };
        let even_fast = machine(0, 2.0);
        let even_slow = machine(2, 8.0);
        for id in 0..50 {
            let j = job(id, 5.0);
            assert!(world.etc(&j, &even_fast) < world.etc(&j, &even_slow));
        }
    }

    #[test]
    fn etc_is_deterministic() {
        let world = World {
            consistency: Consistency::Inconsistent,
            ..World::hihi_consistent(4)
        };
        let j = job(123, 77.0);
        let m = machine(45, 3.0);
        assert_eq!(world.etc(&j, &m), world.etc(&j, &m));
    }

    #[test]
    fn pair_noise_within_range() {
        let world = World::hihi_consistent(5);
        for j in 0..100 {
            for m in 0..8 {
                let noise = world.pair_noise(j, m);
                // Half-open: the unit draw is [0, 1), so φ_mach itself
                // is never attained.
                assert!((1.0..world.phi_mach).contains(&noise));
            }
        }
    }

    /// Mean inter-arrival gap over `n` draws, starting at t = 0.
    fn mean_gap(process: ArrivalProcess, seed: u64, n: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = process.generator();
        let mut now = 0.0;
        for _ in 0..n {
            now += gen.next_gap(now, &mut rng);
        }
        now / n as f64
    }

    #[test]
    fn poisson_gaps_have_plausible_mean() {
        let mean = mean_gap(ArrivalProcess::Poisson { rate: 4.0 }, 6, 4000);
        assert!(
            (mean - 0.25).abs() < 0.03,
            "mean inter-arrival {mean} should approximate 1/rate = 0.25"
        );
    }

    #[test]
    fn mmpp_mean_rate_interpolates_the_phases() {
        // Expected long-run rate: (λ_off·T_off + λ_on·T_on)/(T_off+T_on)
        // = (1·3 + 9·1)/4 = 3 arrivals per second.
        let process = ArrivalProcess::Mmpp {
            base_rate: 1.0,
            burst_rate: 9.0,
            mean_off: 3.0,
            mean_on: 1.0,
        };
        let mean = mean_gap(process, 7, 20_000);
        assert!(
            (mean - 1.0 / 3.0).abs() < 0.05,
            "mean inter-arrival {mean} should approximate 1/3"
        );
    }

    #[test]
    fn mmpp_with_silent_off_phase_still_advances() {
        let process = ArrivalProcess::Mmpp {
            base_rate: 0.0,
            burst_rate: 5.0,
            mean_off: 2.0,
            mean_on: 1.0,
        };
        let mut rng = SmallRng::seed_from_u64(8);
        let mut gen = process.generator();
        let mut now = 0.0;
        for _ in 0..200 {
            let gap = gen.next_gap(now, &mut rng);
            assert!(gap.is_finite() && gap > 0.0);
            now += gap;
        }
    }

    #[test]
    fn diurnal_clusters_arrivals_around_the_peak() {
        let process = ArrivalProcess::Diurnal {
            base_rate: 1.0,
            amplitude: 0.95,
            period: 100.0,
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let mut gen = process.generator();
        let mut now = 0.0;
        let (mut rising, mut falling) = (0u32, 0u32);
        for _ in 0..4000 {
            now += gen.next_gap(now, &mut rng);
            // sin > 0 on the first half-cycle (rising load), < 0 on the
            // second.
            if (now % 100.0) < 50.0 {
                rising += 1;
            } else {
                falling += 1;
            }
        }
        assert!(
            rising > falling * 2,
            "peak half-cycle must dominate: {rising} vs {falling}"
        );
    }

    #[test]
    fn flash_crowd_delivers_whole_bursts() {
        let process = ArrivalProcess::FlashCrowd {
            base_rate: 0.05,
            spike_rate: 0.2,
            burst: 5,
        };
        let mut rng = SmallRng::seed_from_u64(10);
        let mut gen = process.generator();
        let mut now = 0.0;
        let mut zero_gaps = 0u32;
        for _ in 0..500 {
            let gap = gen.next_gap(now, &mut rng);
            if gap == 0.0 {
                zero_gaps += 1;
            }
            now += gap;
        }
        // Every spike contributes burst−1 = 4 simultaneous arrivals, so
        // several spikes must have fired over 500 draws at these rates.
        assert!(
            zero_gaps >= 8,
            "expected multiple spikes, saw {zero_gaps} zero gaps"
        );
    }

    #[test]
    fn arrival_generators_are_deterministic_per_seed() {
        let processes = [
            ArrivalProcess::Poisson { rate: 2e-4 },
            ArrivalProcess::Mmpp {
                base_rate: 1e-4,
                burst_rate: 1e-3,
                mean_off: 6e4,
                mean_on: 1.5e4,
            },
            ArrivalProcess::Diurnal {
                base_rate: 2e-4,
                amplitude: 0.9,
                period: 1e5,
            },
            ArrivalProcess::FlashCrowd {
                base_rate: 1e-4,
                spike_rate: 2e-5,
                burst: 12,
            },
        ];
        for process in processes {
            let draw = |seed: u64| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut gen = process.generator();
                let mut now = 0.0;
                (0..64)
                    .map(|_| {
                        let gap = gen.next_gap(now, &mut rng);
                        now += gap;
                        gap.to_bits()
                    })
                    .collect::<Vec<u64>>()
            };
            assert_eq!(draw(3), draw(3), "{process:?} must replay bit-for-bit");
            assert_ne!(draw(3), draw(4), "{process:?} must depend on the seed");
        }
    }

    #[test]
    fn mmpp_rejects_inverted_rates() {
        let err = ArrivalProcess::Mmpp {
            base_rate: 2.0,
            burst_rate: 1.0,
            mean_off: 1.0,
            mean_on: 1.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("burst rate must exceed"));
    }

    #[test]
    fn diurnal_rejects_overdriven_amplitude() {
        let err = ArrivalProcess::Diurnal {
            base_rate: 1.0,
            amplitude: 1.5,
            period: 10.0,
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("amplitude must lie in [0, 1]"));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn generator_still_fails_loudly_on_bad_knobs() {
        let _ = ArrivalProcess::Poisson { rate: 0.0 }.generator();
    }

    #[test]
    fn world_from_class_uses_ranges() {
        let class: InstanceClass = "u_i_lolo.0".parse().unwrap();
        let world = World::from_class(class, 0);
        assert_eq!(world.consistency, Consistency::Inconsistent);
        assert_eq!(world.phi_task, braun::PHI_TASK_LO);
        assert_eq!(world.phi_mach, braun::PHI_MACH_LO);
    }
}
