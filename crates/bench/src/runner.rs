//! Run orchestration: a uniform algorithm handle over the shared engine
//! runtime, parallel fan-out and summary statistics.

use std::time::Instant;

use cmags_cma::{CmaConfig, CmaEngine, StopCondition, TracePoint};
use cmags_core::engine::{Metaheuristic, Runner};
use cmags_core::{evaluate, Problem};
use cmags_ga::{
    BraunGa, GeneticSimulatedAnnealing, PanmicticMa, SimulatedAnnealing, SteadyStateGa, StruggleGa,
    TabuSearch,
};
use cmags_heuristics::constructive::ConstructiveKind;
use cmags_portfolio::Contender;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A uniform view of one finished run, whatever the algorithm.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best makespan found.
    pub makespan: f64,
    /// Best flowtime found.
    pub flowtime: f64,
    /// Best fitness under the algorithm's own weights.
    pub fitness: f64,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Best-so-far trace.
    pub trace: Vec<TracePoint>,
}

/// The algorithms the tables compare, as a uniform handle.
#[derive(Debug, Clone)]
pub enum Algo {
    /// The paper's cellular memetic algorithm.
    Cma(CmaConfig),
    /// Braun et al.'s generational GA.
    BraunGa(BraunGa),
    /// Carretero & Xhafa-style steady-state GA.
    SteadyState(SteadyStateGa),
    /// Xhafa's Struggle GA.
    Struggle(StruggleGa),
    /// Unstructured MA (ablation).
    Panmictic(PanmicticMa),
    /// Simulated Annealing (Braun et al.'s classic line-up).
    Sa(SimulatedAnnealing),
    /// Tabu Search (Braun et al.'s classic line-up).
    Tabu(TabuSearch),
    /// Genetic Simulated Annealing (Braun et al.'s classic line-up).
    Gsa(GeneticSimulatedAnnealing),
    /// A one-shot constructive heuristic (budget ignored).
    Heuristic(ConstructiveKind),
}

impl Algo {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Algo::Cma(_) => "cMA".to_owned(),
            Algo::BraunGa(_) => "Braun GA".to_owned(),
            Algo::SteadyState(_) => "SS-GA".to_owned(),
            Algo::Struggle(_) => "Struggle GA".to_owned(),
            Algo::Panmictic(_) => "Panmictic MA".to_owned(),
            Algo::Sa(_) => "SA".to_owned(),
            Algo::Tabu(_) => "Tabu".to_owned(),
            Algo::Gsa(_) => "GSA".to_owned(),
            Algo::Heuristic(kind) => kind.name().to_owned(),
        }
    }

    /// Applies a stopping condition (no-op for constructive heuristics).
    #[must_use]
    pub fn with_stop(self, stop: StopCondition) -> Self {
        match self {
            Algo::Cma(c) => Algo::Cma(c.with_stop(stop)),
            Algo::BraunGa(g) => Algo::BraunGa(g.with_stop(stop)),
            Algo::SteadyState(g) => Algo::SteadyState(g.with_stop(stop)),
            Algo::Struggle(g) => Algo::Struggle(g.with_stop(stop)),
            Algo::Panmictic(g) => Algo::Panmictic(g.with_stop(stop)),
            Algo::Sa(s) => Algo::Sa(s.with_stop(stop)),
            Algo::Tabu(t) => Algo::Tabu(t.with_stop(stop)),
            Algo::Gsa(g) => Algo::Gsa(g.with_stop(stop)),
            Algo::Heuristic(k) => Algo::Heuristic(k),
        }
    }

    /// The configured stopping condition (`None` for the one-shot
    /// constructive heuristics).
    #[must_use]
    pub fn stop_condition(&self) -> Option<StopCondition> {
        match self {
            Algo::Cma(c) => Some(c.stop),
            Algo::BraunGa(g) => Some(g.stop),
            Algo::SteadyState(g) => Some(g.stop),
            Algo::Struggle(g) => Some(g.stop),
            Algo::Panmictic(g) => Some(g.stop),
            Algo::Sa(s) => Some(s.stop),
            Algo::Tabu(t) => Some(t.stop),
            Algo::Gsa(g) => Some(g.stop),
            Algo::Heuristic(_) => None,
        }
    }

    /// Builds the algorithm's step-driven engine on `problem` — every
    /// metaheuristic in the workspace behind one trait object (`Send`,
    /// so portfolio races can drive it from worker threads). Returns
    /// `None` for the one-shot constructive heuristics, which have no
    /// iterative state to drive.
    #[must_use]
    pub fn engine<'a>(
        &'a self,
        problem: &'a Problem,
        seed: u64,
    ) -> Option<Box<dyn Metaheuristic + Send + 'a>> {
        match self {
            Algo::Cma(config) => Some(Box::new(CmaEngine::new(config, problem, seed))),
            Algo::BraunGa(ga) => Some(Box::new(ga.engine(problem, seed))),
            Algo::SteadyState(ga) => Some(Box::new(ga.engine(problem, seed))),
            Algo::Struggle(ga) => Some(Box::new(ga.engine(problem, seed))),
            Algo::Panmictic(ma) => Some(Box::new(ma.engine(problem, seed))),
            Algo::Sa(sa) => Some(Box::new(sa.engine(problem, seed))),
            Algo::Tabu(tabu) => Some(Box::new(tabu.engine(problem, seed))),
            Algo::Gsa(gsa) => Some(Box::new(gsa.engine(problem, seed))),
            Algo::Heuristic(_) => None,
        }
    }

    /// Runs on `problem` with `seed`: every metaheuristic goes through
    /// the shared [`Runner`]; constructive heuristics evaluate one-shot.
    #[must_use]
    pub fn run(&self, problem: &Problem, seed: u64) -> RunResult {
        if let Algo::Heuristic(kind) = self {
            let started = Instant::now();
            let mut rng = SmallRng::seed_from_u64(seed);
            let schedule = kind.build_seeded(problem, &mut rng);
            let objectives = evaluate(problem, &schedule);
            return RunResult {
                makespan: objectives.makespan,
                flowtime: objectives.flowtime,
                fitness: problem.fitness(objectives),
                elapsed_s: started.elapsed().as_secs_f64(),
                trace: Vec::new(),
            };
        }

        let start = Instant::now();
        let stop = self
            .stop_condition()
            .expect("metaheuristics have a stop condition");
        let mut engine = self
            .engine(problem, seed)
            .expect("metaheuristics have an engine");
        let (stats, trace) = Runner::new(stop).run_traced_from(start, engine.as_mut());
        let objectives = engine.best_objectives();
        RunResult {
            makespan: objectives.makespan,
            flowtime: objectives.flowtime,
            fitness: engine.best_fitness(),
            elapsed_s: stats.elapsed.as_secs_f64(),
            trace,
        }
    }
}

/// The portfolio roster: every iterative metaheuristic of the line-up
/// under the problem's own λ-weights where configurable, as racing
/// contenders with per-entry RNG streams split off `seed`. The roster
/// is open-ended by construction — callers can append their own
/// [`Contender`]s.
#[must_use]
pub fn roster<'a>(problem: &'a Problem, algos: &'a [Algo], seed: u64) -> Vec<Contender<'a>> {
    algos
        .iter()
        .enumerate()
        .filter_map(|(i, algo)| {
            algo.engine(problem, cmags_portfolio::entry_seed(seed, i))
                .map(|engine| Contender::new(algo.name(), engine))
        })
        .collect()
}

/// Summary statistics over repeated runs of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum (the paper reports best-of-10).
    pub best: f64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// Computes best/mean/std of `values`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of no runs");
        let n = values.len() as f64;
        let best = values.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self {
            best,
            mean,
            std: var.sqrt(),
        }
    }

    /// `std / mean` in percent (the paper's §5.1 robustness metric).
    #[must_use]
    pub fn cv_percent(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean * 100.0
        }
    }
}

/// Runs `f` over `items` on up to `threads` workers, preserving order.
///
/// Block partitioning over std scoped threads; items must be
/// independent. Used to fan (instance × algorithm × seed) jobs out.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    // Pair each item with its destination slot, then split by chunks.
    let mut work: Vec<(T, &mut Option<R>)> = items.into_iter().zip(slots.iter_mut()).collect();
    std::thread::scope(|scope| {
        while !work.is_empty() {
            let batch: Vec<(T, &mut Option<R>)> = work.drain(..chunk.min(work.len())).collect();
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in batch {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_c_hihi.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(48, 6), 0))
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[4.0, 6.0, 8.0]);
        assert_eq!(s.best, 4.0);
        assert_eq!(s.mean, 6.0);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.cv_percent() > 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = parallel_map(items.clone(), 4, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_path() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn every_algo_runs_uniformly() {
        let p = problem();
        let stop = StopCondition::children(60);
        let algos = vec![
            Algo::Cma(CmaConfig::paper()),
            Algo::BraunGa(BraunGa {
                population_size: 12,
                ..BraunGa::default()
            }),
            Algo::SteadyState(SteadyStateGa {
                population_size: 12,
                ..SteadyStateGa::default()
            }),
            Algo::Struggle(StruggleGa {
                population_size: 12,
                ..StruggleGa::default()
            }),
            Algo::Panmictic(PanmicticMa {
                population_size: 12,
                ..PanmicticMa::default()
            }),
            Algo::Sa(SimulatedAnnealing::default()),
            Algo::Tabu(TabuSearch::default()),
            Algo::Gsa(GeneticSimulatedAnnealing {
                population_size: 12,
                ..GeneticSimulatedAnnealing::default()
            }),
            Algo::Heuristic(ConstructiveKind::MinMin),
        ];
        for algo in algos {
            let result = algo.clone().with_stop(stop).run(&p, 1);
            assert!(result.makespan > 0.0, "{}", algo.name());
            assert!(result.flowtime >= result.makespan, "{}", algo.name());
        }
    }

    #[test]
    fn algo_runs_deterministically_across_threads() {
        let p = problem();
        let algo = Algo::Cma(CmaConfig::paper()).with_stop(StopCondition::children(50));
        let jobs: Vec<u64> = vec![5, 5, 5, 5];
        let results = parallel_map(jobs, 4, |seed| algo.run(&p, seed).makespan);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "summary of no runs")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }
}
