//! Pareto dominance on the (makespan, flowtime) objective pair.
//!
//! Both objectives are minimised. A point *dominates* another when it is
//! no worse in both objectives and strictly better in at least one —
//! the standard strict Pareto order, here specialised to the paper's
//! bi-objective formulation (§2).

use cmags_core::Objectives;

/// Outcome of comparing two objective vectors under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParetoOrdering {
    /// The left point dominates the right one.
    Dominates,
    /// The left point is dominated by the right one.
    DominatedBy,
    /// Neither dominates: the points trade off against each other.
    Incomparable,
    /// Identical objective vectors.
    Equal,
}

/// Compares `a` against `b` under minimising Pareto dominance.
#[must_use]
pub fn compare(a: Objectives, b: Objectives) -> ParetoOrdering {
    let better_mk = a.makespan < b.makespan;
    let worse_mk = a.makespan > b.makespan;
    let better_ft = a.flowtime < b.flowtime;
    let worse_ft = a.flowtime > b.flowtime;
    match (better_mk || better_ft, worse_mk || worse_ft) {
        (true, false) => ParetoOrdering::Dominates,
        (false, true) => ParetoOrdering::DominatedBy,
        (true, true) => ParetoOrdering::Incomparable,
        (false, false) => ParetoOrdering::Equal,
    }
}

/// Whether `a` strictly dominates `b`.
#[must_use]
pub fn dominates(a: Objectives, b: Objectives) -> bool {
    compare(a, b) == ParetoOrdering::Dominates
}

/// Whether `a` weakly dominates `b` (no worse in both objectives).
#[must_use]
pub fn weakly_dominates(a: Objectives, b: Objectives) -> bool {
    matches!(
        compare(a, b),
        ParetoOrdering::Dominates | ParetoOrdering::Equal
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(makespan: f64, flowtime: f64) -> Objectives {
        Objectives { makespan, flowtime }
    }

    #[test]
    fn strict_dominance_both_objectives() {
        assert_eq!(compare(o(1.0, 1.0), o(2.0, 2.0)), ParetoOrdering::Dominates);
        assert_eq!(
            compare(o(2.0, 2.0), o(1.0, 1.0)),
            ParetoOrdering::DominatedBy
        );
    }

    #[test]
    fn dominance_with_one_tie() {
        assert_eq!(compare(o(1.0, 5.0), o(1.0, 7.0)), ParetoOrdering::Dominates);
        assert_eq!(compare(o(5.0, 1.0), o(7.0, 1.0)), ParetoOrdering::Dominates);
    }

    #[test]
    fn incomparable_trade_off() {
        assert_eq!(
            compare(o(1.0, 9.0), o(9.0, 1.0)),
            ParetoOrdering::Incomparable
        );
        assert_eq!(
            compare(o(9.0, 1.0), o(1.0, 9.0)),
            ParetoOrdering::Incomparable
        );
    }

    #[test]
    fn equal_points() {
        assert_eq!(compare(o(3.0, 4.0), o(3.0, 4.0)), ParetoOrdering::Equal);
        assert!(!dominates(o(3.0, 4.0), o(3.0, 4.0)));
        assert!(weakly_dominates(o(3.0, 4.0), o(3.0, 4.0)));
    }

    #[test]
    fn comparison_is_antisymmetric() {
        let pairs = [
            (o(1.0, 2.0), o(2.0, 1.0)),
            (o(1.0, 1.0), o(2.0, 2.0)),
            (o(1.0, 1.0), o(1.0, 1.0)),
            (o(1.0, 5.0), o(1.0, 7.0)),
        ];
        for (a, b) in pairs {
            let forward = compare(a, b);
            let backward = compare(b, a);
            let expected = match forward {
                ParetoOrdering::Dominates => ParetoOrdering::DominatedBy,
                ParetoOrdering::DominatedBy => ParetoOrdering::Dominates,
                other => other,
            };
            assert_eq!(backward, expected);
        }
    }
}
