//! Pragma-suppressed fixture: both pragma placements. The wall-clock
//! reads are real rule hits, but each carries a reasoned
//! `lint:allow`, so the file must lint clean.

use std::time::Instant;

/// Trailing pragma: covers its own line.
pub fn stamp() -> Instant {
    Instant::now() // lint:allow(no-wall-clock-in-sim): informational timestamp, never enters the tick domain
}

/// Standalone pragma: covers the next code line, skipping further
/// commentary in between.
pub fn budget_anchor() -> Instant {
    // lint:allow(no-wall-clock-in-sim): wall budget anchor for an opt-in stop condition
    // (prose between pragma and code is fine)
    Instant::now()
}
