//! # cmags-ga — baseline genetic algorithms
//!
//! Reimplementations of the three GAs the paper compares against
//! (Tables 2, 3 and 5), plus an unstructured memetic algorithm used as an
//! ablation baseline. None of the originals are available as open source;
//! each is rebuilt from its published description (see `DESIGN.md` §3)
//! on top of the shared substrate (`cmags-core` evaluation,
//! `cmags-heuristics` operators):
//!
//! * [`BraunGa`] — the generational GA of Braun et al. (JPDC 2001):
//!   population 200, one Min-Min seed, inverse-fitness roulette selection,
//!   one-point crossover, random-move mutation, elitism. Optimises
//!   **makespan only**, as in the original study.
//! * [`SteadyStateGa`] — the Carretero & Xhafa (2006) style steady-state
//!   GA: binary tournament parents, one child per step replacing the
//!   worst individual if better; optimises the paper's weighted
//!   makespan + mean-flowtime fitness.
//! * [`StruggleGa`] — Xhafa's Struggle GA (BIOMA 2006): random mating,
//!   and the offspring replaces the **most similar** individual (Hamming
//!   distance on assignment vectors) when better — a diversity-preserving
//!   replacement.
//! * [`PanmicticMa`] — cMA operators (one-point, rebalance, LMCTS local
//!   search) on an *unstructured* population: the control that isolates
//!   the contribution of the cellular topology.
//!
//! Two further non-evolutionary metaheuristics complete the classic
//! line-up of Braun et al.'s eleven-mapper study:
//!
//! * [`SimulatedAnnealing`] — Metropolis acceptance over single-job
//!   moves with geometric cooling;
//! * [`TabuSearch`] — best-of-sampled-moves steps with a short-term
//!   tabu memory and aspiration;
//! * [`GeneticSimulatedAnnealing`] — Braun's GA/SA hybrid: generational
//!   breeding with per-slot threshold acceptance under a cooling
//!   temperature.
//!
//! All engines are step-driven [`cmags_core::engine::Metaheuristic`]
//! state machines (each `Xxx::engine(problem, seed)` builds one) run
//! through the shared [`cmags_core::engine::Runner`]: the budget, stop
//! conditions and best-so-far trace recording are the same code for
//! every algorithm in the workspace, so comparisons run under identical
//! budgets and children counts are honoured exactly. [`GaOutcome`]
//! mirrors `cmags_cma::CmaOutcome` for uniform tabulation.
//!
//! ## Example
//!
//! ```
//! use cmags_cma::StopCondition;
//! use cmags_core::Problem;
//! use cmags_etc::braun;
//! use cmags_ga::StruggleGa;
//!
//! let inst = braun::generate("u_i_hilo.0".parse().unwrap(), 0);
//! let problem = Problem::from_instance(&inst);
//! let ga = StruggleGa::default().with_stop(StopCondition::children(500));
//! let outcome = ga.run(&problem, 1);
//! assert!(outcome.objectives.makespan > 0.0);
//! ```

#![warn(missing_docs)]

mod braun_ga;
mod common;
mod gsa;
mod panmictic_ma;
mod sa;
mod steady_state;
mod struggle;
mod tabu;

pub use braun_ga::{BraunGa, BraunGaEngine};
pub use common::GaOutcome;
pub use gsa::{GeneticSimulatedAnnealing, GeneticSimulatedAnnealingEngine};
pub use panmictic_ma::{PanmicticMa, PanmicticMaEngine};
pub use sa::{SimulatedAnnealing, SimulatedAnnealingEngine};
pub use steady_state::{SteadyStateGa, SteadyStateGaEngine};
pub use struggle::{StruggleGa, StruggleGaEngine};
pub use tabu::{TabuList, TabuSearch, TabuSearchEngine};
