//! LJFR-SJFR — Longest Job to Fastest Resource alternated with Shortest
//! Job to Fastest Resource (Abraham, Buyya & Nath, ADCOM 2000).
//!
//! The paper uses this heuristic to seed the cMA population because it
//! "tries to simultaneously minimize both makespan and flowtime": the LJFR
//! phase packs the big jobs onto the fast machines (good for makespan)
//! while SJFR steps release many small jobs early (good for flowtime).

use std::collections::VecDeque;

use cmags_core::{MachineId, Problem, Schedule};
use rand::RngCore;

use super::Constructive;

/// The LJFR-SJFR constructive heuristic (paper §3.2).
///
/// Because the ETC model carries no explicit workloads or MIPS ratings,
/// the conventional proxies are used (see `Problem`): a job's *length* is
/// its mean ETC across machines and a machine's *speed* ranking is its
/// mean ETC across jobs. Both orderings are deterministic (ties break by
/// index).
///
/// Algorithm:
///
/// 1. Sort jobs ascending by length. Assign the `nb_machines` longest
///    jobs to the idle machines: longest job → fastest machine, and so on.
/// 2. While jobs remain, pick the machine with the minimum completion
///    time ("the fastest machine that has finished its jobs") and assign
///    it alternately the shortest remaining job (SJFR) or the longest
///    remaining job (LJFR), starting with SJFR.
#[derive(Debug, Clone, Copy, Default)]
pub struct LjfrSjfr;

impl Constructive for LjfrSjfr {
    fn name(&self) -> &'static str {
        "LJFR-SJFR"
    }

    fn build_seeded(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Schedule {
        let mut completions: Vec<f64> = problem.ready_times().to_vec();
        let mut schedule = Schedule::uniform(problem.nb_jobs(), 0);

        // Jobs ascending by workload proxy; queue front = shortest.
        let mut queue: VecDeque<u32> = problem.jobs_by_workload().into();
        let machines_fastest_first = problem.machines_by_speed();

        // Phase 1 (LJFR): the nb_machines longest jobs, longest -> fastest.
        for &machine in &machines_fastest_first {
            let Some(job) = queue.pop_back() else { break };
            schedule.assign(job, machine);
            completions[machine as usize] += problem.etc(job, machine);
        }

        // Phase 2: alternate SJFR / LJFR on the earliest-finishing machine.
        let mut take_shortest = true;
        while let Some(job) = if take_shortest {
            queue.pop_front()
        } else {
            queue.pop_back()
        } {
            let machine = argmin(&completions) as MachineId;
            schedule.assign(job, machine);
            completions[machine as usize] += problem.etc(job, machine);
            take_shortest = !take_shortest;
        }
        schedule
    }
}

/// Index of the minimum value; ties resolve to the lowest index.
fn argmin(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{medium, tiny};
    use super::super::{Constructive, RandomAssign};
    use super::*;
    use cmags_core::evaluate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn phase_one_sends_longest_to_fastest() {
        let p = tiny();
        // Lengths ascending: job0 < job1 < job2 < job3; machine 0 fastest.
        // Phase 1 assigns job3 -> m0, job2 -> m1.
        let s = LjfrSjfr.build(&p);
        assert_eq!(s.machine_of(3), 0);
        assert_eq!(s.machine_of(2), 1);
    }

    #[test]
    fn alternation_continues_on_min_completion_machine() {
        let p = tiny();
        let s = LjfrSjfr.build(&p);
        // After phase 1: completions m0 = 8 (job3), m1 = 12 (job2).
        // SJFR step: shortest remaining job0 -> m0 (completion 10).
        assert_eq!(s.machine_of(0), 0);
        // LJFR step: longest remaining job1 -> m0 (10 < 12), completion 14.
        assert_eq!(s.machine_of(1), 0);
    }

    #[test]
    fn deterministic() {
        let p = medium();
        assert_eq!(LjfrSjfr.build(&p), LjfrSjfr.build(&p));
    }

    #[test]
    fn covers_all_jobs_even_with_fewer_jobs_than_machines() {
        // 2 jobs x 4 machines: phase 1 exhausts the queue.
        let etc = cmags_etc::EtcMatrix::from_rows(
            2,
            4,
            vec![
                4.0, 2.0, 8.0, 6.0, //
                1.0, 3.0, 5.0, 7.0,
            ],
        );
        let inst = cmags_etc::GridInstance::new("wide", etc);
        let p = cmags_core::Problem::from_instance(&inst);
        let s = LjfrSjfr.build(&p);
        assert_eq!(s.nb_jobs(), 2);
        // Both jobs placed on valid machines.
        assert!(s.iter().all(|(_, m)| (m as usize) < 4));
    }

    #[test]
    fn beats_random_on_flowtime() {
        // Its design goal: both objectives should beat a random schedule.
        let p = medium();
        let mut rng = SmallRng::seed_from_u64(5);
        let random = evaluate(&p, &RandomAssign.build_seeded(&p, &mut rng));
        let seeded = evaluate(&p, &LjfrSjfr.build(&p));
        assert!(seeded.flowtime < random.flowtime);
        assert!(seeded.makespan < random.makespan);
    }
}
