//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the primitives it needs: the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] trait triad, a xoshiro256++
//! [`rngs::SmallRng`], unbiased integer ranges (Lemire rejection), 53-bit
//! float sampling and Fisher–Yates shuffling ([`seq::SliceRandom`]).
//!
//! The generators are reimplemented from their public-domain reference
//! descriptions (Blackman & Vigna's xoshiro256++, Steele et al.'s
//! SplitMix64). Streams are **not** bit-compatible with the real `rand`
//! crate: every determinism guarantee in this workspace is defined
//! against this implementation.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through SplitMix64
    /// (so nearby seeds yield unrelated states).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution
    /// (`f64`/`f32` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        crate::distributions::f64_half_open(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A freshly seeded non-deterministic generator (wall-clock + thread
/// entropy). Unlike the real crate this is not a persistent thread-local
/// — each call starts a new stream, which is all the workspace's
/// examples need.
#[must_use]
pub fn thread_rng() -> rngs::SmallRng {
    use std::hash::{BuildHasher, Hasher};
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(clock);
    rngs::SmallRng::seed_from_u64(hasher.finish())
}

/// SplitMix64 — the seed expander (Steele, Lea & Flood, 2014).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_f64_is_half_open_unit() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "got {heads}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u32..10);
        assert!(v < 10);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "overwhelmingly likely");
    }
}
