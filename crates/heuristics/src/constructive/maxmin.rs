//! Max-Min (Braun et al. 2001).

use cmags_core::{JobId, Problem, Schedule};
use rand::RngCore;

use super::{best_completion_for, Constructive};

/// Max-Min: repeatedly assign the job whose *minimum completion time* is
/// largest.
///
/// The mirror image of Min-Min: big jobs are committed first (to their
/// best machines), and the small jobs then fill the gaps. Tends to win
/// when a few long jobs dominate the workload. `O(jobs² · machines)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMin;

impl Constructive for MaxMin {
    fn name(&self) -> &'static str {
        "Max-Min"
    }

    fn build_seeded(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Schedule {
        let mut completions: Vec<f64> = problem.ready_times().to_vec();
        let mut schedule = Schedule::uniform(problem.nb_jobs(), 0);
        let mut unassigned: Vec<JobId> = (0..problem.nb_jobs() as JobId).collect();

        while !unassigned.is_empty() {
            let mut best_pos = 0;
            let mut best = best_completion_for(problem, &completions, unassigned[0]);
            for (pos, &job) in unassigned.iter().enumerate().skip(1) {
                let cand = best_completion_for(problem, &completions, job);
                if cand.1 > best.1 {
                    best = cand;
                    best_pos = pos;
                }
            }
            let job = unassigned.swap_remove(best_pos);
            schedule.assign(job, best.0);
            completions[best.0 as usize] = best.1;
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{medium, tiny};
    use super::*;
    use cmags_core::evaluate;

    #[test]
    fn commits_longest_job_first() {
        let p = tiny();
        let s = MaxMin.build(&p);
        // Round 1: job 3 has the largest best-case completion (8 on m0).
        assert_eq!(s.machine_of(3), 0);
    }

    #[test]
    fn feasible_and_deterministic() {
        let p = medium();
        let a = MaxMin.build(&p);
        let b = MaxMin.build(&p);
        assert_eq!(a, b);
        let obj = evaluate(&p, &a);
        assert!(obj.makespan > 0.0);
    }

    #[test]
    fn differs_from_minmin_in_general() {
        use super::super::MinMin;
        let p = medium();
        assert_ne!(MaxMin.build(&p), MinMin.build(&p));
    }
}
