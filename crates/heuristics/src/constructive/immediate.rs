//! Immediate-mode heuristics (Braun et al. 2001): one pass over the jobs
//! in arrival order, each assigned without revisiting earlier decisions.
//!
//! These are the natural schedulers for *online* settings and serve as
//! cheap baselines in the dynamic simulator.

use cmags_core::{MachineId, Problem, Schedule};
use rand::RngCore;

use super::{best_completion_for, Constructive};

/// MCT — Minimum Completion Time.
///
/// Each job (in index order) goes to the machine that would finish it
/// earliest given current loads. Balances load and execution time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mct;

impl Constructive for Mct {
    fn name(&self) -> &'static str {
        "MCT"
    }

    fn build_seeded(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Schedule {
        let mut completions: Vec<f64> = problem.ready_times().to_vec();
        let mut schedule = Schedule::uniform(problem.nb_jobs(), 0);
        for job in 0..problem.nb_jobs() as u32 {
            let (machine, ct) = best_completion_for(problem, &completions, job);
            schedule.assign(job, machine);
            completions[machine as usize] = ct;
        }
        schedule
    }
}

/// MET — Minimum Execution Time.
///
/// Each job goes to its fastest machine, ignoring load entirely. On
/// consistent matrices this piles everything onto the single fastest
/// machine — exactly the pathology Braun et al. documented.
#[derive(Debug, Clone, Copy, Default)]
pub struct Met;

impl Constructive for Met {
    fn name(&self) -> &'static str {
        "MET"
    }

    fn build_seeded(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Schedule {
        let mut schedule = Schedule::uniform(problem.nb_jobs(), 0);
        for job in 0..problem.nb_jobs() as u32 {
            let row = problem.etc_row(job);
            let mut best = 0 as MachineId;
            for (m, &etc) in row.iter().enumerate().skip(1) {
                if etc < row[best as usize] {
                    best = m as MachineId;
                }
            }
            schedule.assign(job, best);
        }
        schedule
    }
}

/// OLB — Opportunistic Load Balancing.
///
/// Each job goes to the machine that becomes *ready* earliest, ignoring
/// how long the job runs there. Keeps machines busy but wastes cycles on
/// slow machines.
#[derive(Debug, Clone, Copy, Default)]
pub struct Olb;

impl Constructive for Olb {
    fn name(&self) -> &'static str {
        "OLB"
    }

    fn build_seeded(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Schedule {
        let mut completions: Vec<f64> = problem.ready_times().to_vec();
        let mut schedule = Schedule::uniform(problem.nb_jobs(), 0);
        for job in 0..problem.nb_jobs() as u32 {
            let mut machine = 0 as MachineId;
            for m in 1..completions.len() {
                if completions[m] < completions[machine as usize] {
                    machine = m as MachineId;
                }
            }
            schedule.assign(job, machine);
            completions[machine as usize] += problem.etc(job, machine);
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{medium, tiny};
    use super::*;
    use cmags_core::evaluate;
    use cmags_etc::{EtcMatrix, GridInstance};

    #[test]
    fn met_piles_on_fastest_machine_when_consistent() {
        let p = tiny();
        let s = Met.build(&p);
        // Machine 0 is uniformly faster -> every job lands there.
        assert!(s.iter().all(|(_, m)| m == 0));
    }

    #[test]
    fn mct_balances_by_completion() {
        let p = tiny();
        let s = Mct.build(&p);
        let histogram = s.load_histogram(2);
        assert!(
            histogram[0] > 0 && histogram[1] > 0,
            "MCT must use both machines: {histogram:?}"
        );
    }

    #[test]
    fn olb_round_robins_on_uniform_etc() {
        let etc = EtcMatrix::from_rows(4, 2, vec![1.0; 8]);
        let p = cmags_core::Problem::from_instance(&GridInstance::new("flat", etc));
        let s = Olb.build(&p);
        assert_eq!(s.load_histogram(2), vec![2, 2]);
    }

    #[test]
    fn mct_beats_olb_and_met_on_consistent_benchmark() {
        let p = medium();
        let mct = evaluate(&p, &Mct.build(&p)).makespan;
        let olb = evaluate(&p, &Olb.build(&p)).makespan;
        let met = evaluate(&p, &Met.build(&p)).makespan;
        assert!(mct < olb, "MCT {mct} vs OLB {olb}");
        assert!(mct < met, "MCT {mct} vs MET {met}");
    }

    #[test]
    fn all_deterministic() {
        let p = medium();
        assert_eq!(Mct.build(&p), Mct.build(&p));
        assert_eq!(Met.build(&p), Met.build(&p));
        assert_eq!(Olb.build(&p), Olb.build(&p));
    }
}
