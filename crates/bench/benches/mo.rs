//! Cost of the multi-objective machinery: non-dominated sorting,
//! crowding, archive maintenance, the 2-D hypervolume, and fixed-budget
//! MoCell / NSGA-II runs.
//!
//! The MO engines pay for dominance bookkeeping that the scalarised
//! cMA avoids; these benches quantify that overhead so the front
//! quality reported by `mo_front` can be weighed against its cost.

use std::hint::black_box;

use cmags_cma::StopCondition;
use cmags_core::{Objectives, Problem, Schedule};
use cmags_etc::{braun, InstanceClass};
use cmags_mo::archive::{CrowdingArchive, MoSolution};
use cmags_mo::crowding::crowding_distances;
use cmags_mo::indicators::{hypervolume, reference_point};
use cmags_mo::ranking::fronts;
use cmags_mo::{MoCellConfig, Nsga2Config};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn problem() -> Problem {
    let class: InstanceClass = "u_c_hihi.0".parse().unwrap();
    Problem::from_instance(&braun::generate(class, 0))
}

/// A deterministic scatter of `n` objective points.
fn scatter(n: usize) -> Vec<Objectives> {
    let mut rng = SmallRng::seed_from_u64(42);
    (0..n)
        .map(|_| Objectives {
            makespan: rng.gen_range(1.0..100.0),
            flowtime: rng.gen_range(1.0..100.0),
        })
        .collect()
}

fn bench_pareto_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("mo_machinery");
    for n in [64usize, 256] {
        let points = scatter(n);
        group.bench_function(format!("fast_nondominated_sort_{n}"), |b| {
            b.iter(|| black_box(fronts(black_box(&points))))
        });
        group.bench_function(format!("crowding_distance_{n}"), |b| {
            b.iter(|| black_box(crowding_distances(black_box(&points))))
        });
        group.bench_function(format!("hypervolume_{n}"), |b| {
            let reference = reference_point(&[&points], 0.05);
            b.iter(|| black_box(hypervolume(black_box(&points), reference)))
        });
        group.bench_function(format!("archive_offers_{n}"), |b| {
            b.iter(|| {
                let mut archive = CrowdingArchive::new(100);
                for &objectives in &points {
                    archive.offer(MoSolution {
                        schedule: Schedule::uniform(1, 0),
                        objectives,
                    });
                }
                black_box(archive.len())
            })
        });
    }
    group.finish();
}

fn bench_mo_engines(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("mo_engines_512x16");
    group.sample_size(10);

    group.bench_function("mocell_100_children", |b| {
        let config = MoCellConfig::suggested().with_stop(StopCondition::children(100));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(config.run(&p, seed).children)
        })
    });
    group.bench_function("nsga2_100_children", |b| {
        let config = Nsga2Config::suggested()
            .with_population(20)
            .with_stop(StopCondition::children(100));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(config.run(&p, seed).children)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pareto_machinery, bench_mo_engines);
criterion_main!(benches);
