//! Toroidal grid geometry.

/// A 2-D toroidal grid of cells, addressed row-major.
///
/// The paper's population topology (§3.2): positions wrap in both
/// dimensions, so every cell has the same neighbourhood shape and no
/// borders exist. `Torus` is a value type carrying only the dimensions;
/// the population itself lives in the engine as a flat `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    height: usize,
    width: usize,
}

impl Torus {
    /// Creates a torus with `height` rows and `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "torus dimensions must be positive");
        Self { height, width }
    }

    /// Rows.
    #[inline]
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Columns.
    #[inline]
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of cells.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.height * self.width
    }

    /// Whether the torus has no cells (never true; kept for API hygiene).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major index of `(row, col)`.
    #[inline]
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.height && col < self.width);
        row * self.width + col
    }

    /// `(row, col)` of a row-major index.
    #[inline]
    #[must_use]
    pub fn position(&self, index: usize) -> (usize, usize) {
        debug_assert!(index < self.len());
        (index / self.width, index % self.width)
    }

    /// Index of the cell at signed offset `(dr, dc)` from `index`, with
    /// toroidal wrap-around.
    #[inline]
    #[must_use]
    pub fn offset(&self, index: usize, dr: isize, dc: isize) -> usize {
        let (row, col) = self.position(index);
        let h = self.height as isize;
        let w = self.width as isize;
        let nr = (row as isize + dr).rem_euclid(h) as usize;
        let nc = (col as isize + dc).rem_euclid(w) as usize;
        self.index(nr, nc)
    }

    /// Shortest toroidal Manhattan distance between two cells.
    #[must_use]
    pub fn manhattan(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.position(a);
        let (br, bc) = self.position(b);
        let dr = ar.abs_diff(br);
        let dc = ac.abs_diff(bc);
        dr.min(self.height - dr) + dc.min(self.width - dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_position_round_trip() {
        let t = Torus::new(5, 5);
        for i in 0..t.len() {
            let (r, c) = t.position(i);
            assert_eq!(t.index(r, c), i);
        }
    }

    #[test]
    fn offsets_wrap_both_ways() {
        let t = Torus::new(3, 4);
        // Cell (0, 0): up wraps to row 2, left wraps to col 3.
        assert_eq!(t.offset(0, -1, 0), t.index(2, 0));
        assert_eq!(t.offset(0, 0, -1), t.index(0, 3));
        // Down-right from the bottom-right corner wraps to (0, 0).
        let corner = t.index(2, 3);
        assert_eq!(t.offset(corner, 1, 1), 0);
        // Offsets beyond one full wrap still land correctly.
        assert_eq!(t.offset(0, 3, 4), 0);
        assert_eq!(t.offset(0, -3, -4), 0);
    }

    #[test]
    fn manhattan_uses_shortest_wrap() {
        let t = Torus::new(5, 5);
        let a = t.index(0, 0);
        let b = t.index(4, 4);
        // Direct distance 8, wrapped distance 1 + 1.
        assert_eq!(t.manhattan(a, b), 2);
        assert_eq!(t.manhattan(a, a), 0);
        // Symmetry.
        assert_eq!(t.manhattan(a, b), t.manhattan(b, a));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_dimension() {
        let _ = Torus::new(0, 5);
    }
}
