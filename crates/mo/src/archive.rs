//! Bounded external archive with crowding-distance truncation.
//!
//! Dominance-based engines ([`crate::mocell`], [`crate::nsga2`]) stream
//! every evaluated child through this archive. It keeps at most
//! `capacity` mutually non-dominated solutions; when full, the most
//! crowded member is evicted — the rule used by MOCell and SPEA2-style
//! archives to approximate a well-spread front under a memory bound.

use cmags_core::{Objectives, Schedule};

use crate::crowding::crowding_distances;
use crate::dominance::{compare, ParetoOrdering};

/// One archived non-dominated solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MoSolution {
    /// The schedule.
    pub schedule: Schedule,
    /// Its objective pair.
    pub objectives: Objectives,
}

/// A bounded set of mutually non-dominated solutions.
#[derive(Debug, Clone)]
pub struct CrowdingArchive {
    capacity: usize,
    entries: Vec<MoSolution>,
}

impl CrowdingArchive {
    /// Creates an archive holding at most `capacity` solutions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of archived solutions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive holds no solutions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The archived solutions, ascending by makespan.
    #[must_use]
    pub fn solutions(&self) -> &[MoSolution] {
        &self.entries
    }

    /// The archived objective vectors, ascending by makespan.
    #[must_use]
    pub fn objectives(&self) -> Vec<Objectives> {
        self.entries.iter().map(|e| e.objectives).collect()
    }

    /// Offers a candidate.
    ///
    /// Returns `true` if the candidate entered the archive: it is
    /// rejected when dominated by (or duplicating) an existing entry;
    /// entries it dominates are evicted; and when the archive would
    /// exceed capacity, the entry with the smallest crowding distance is
    /// dropped (which may be the candidate itself).
    pub fn offer(&mut self, candidate: MoSolution) -> bool {
        for existing in &self.entries {
            match compare(existing.objectives, candidate.objectives) {
                ParetoOrdering::Dominates | ParetoOrdering::Equal => return false,
                ParetoOrdering::DominatedBy | ParetoOrdering::Incomparable => {}
            }
        }
        self.entries
            .retain(|e| compare(candidate.objectives, e.objectives) != ParetoOrdering::Dominates);
        let at = self
            .entries
            .partition_point(|e| e.objectives.makespan < candidate.objectives.makespan);
        self.entries.insert(at, candidate);
        if self.entries.len() > self.capacity {
            let points = self.objectives();
            let crowding = crowding_distances(&points);
            let victim = crowding
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .expect("archive is non-empty");
            self.entries.remove(victim);
            // The candidate (inserted at `at`) survived iff it was not
            // itself the most crowded entry.
            return victim != at;
        }
        true
    }

    /// Verifies mutual non-domination, the capacity bound and makespan
    /// ordering (`O(n²)`; test support).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        if self.entries.len() > self.capacity {
            return false;
        }
        for (i, a) in self.entries.iter().enumerate() {
            for b in &self.entries[i + 1..] {
                if compare(a.objectives, b.objectives) != ParetoOrdering::Incomparable {
                    return false;
                }
            }
        }
        self.entries
            .windows(2)
            .all(|w| w[0].objectives.makespan <= w[1].objectives.makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(makespan: f64, flowtime: f64) -> MoSolution {
        MoSolution {
            schedule: Schedule::uniform(1, 0),
            objectives: Objectives { makespan, flowtime },
        }
    }

    #[test]
    fn rejects_dominated_and_duplicate_candidates() {
        let mut a = CrowdingArchive::new(10);
        assert!(a.offer(sol(2.0, 2.0)));
        assert!(!a.offer(sol(3.0, 3.0)), "dominated");
        assert!(!a.offer(sol(2.0, 2.0)), "duplicate");
        assert!(a.offer(sol(1.0, 3.0)), "incomparable");
        assert_eq!(a.len(), 2);
        assert!(a.is_consistent());
    }

    #[test]
    fn dominating_candidate_evicts_incumbents() {
        let mut a = CrowdingArchive::new(10);
        a.offer(sol(4.0, 4.0));
        a.offer(sol(2.0, 6.0));
        a.offer(sol(6.0, 2.0));
        assert!(a.offer(sol(1.0, 1.0)), "dominates everything");
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions()[0].objectives.makespan, 1.0);
    }

    #[test]
    fn capacity_bound_evicts_most_crowded() {
        let mut a = CrowdingArchive::new(4);
        // A spread front, then a point crammed next to an existing one.
        a.offer(sol(0.0, 10.0));
        a.offer(sol(10.0, 0.0));
        a.offer(sol(5.0, 5.0));
        a.offer(sol(2.0, 8.0));
        assert_eq!(a.len(), 4);
        // (5.2, 4.8) is non-dominated but lands in the most crowded spot;
        // after the offer the archive still holds exactly 4 and stays
        // mutually non-dominated with its extremes intact.
        a.offer(sol(5.2, 4.8));
        assert_eq!(a.len(), 4);
        assert!(a.is_consistent());
        let points = a.objectives();
        assert_eq!(points.first().unwrap().makespan, 0.0, "extreme kept");
        assert_eq!(points.last().unwrap().makespan, 10.0, "extreme kept");
    }

    #[test]
    fn entries_sorted_by_makespan() {
        let mut a = CrowdingArchive::new(8);
        for (mk, ft) in [(7.0, 1.0), (1.0, 7.0), (4.0, 4.0), (2.0, 6.0)] {
            a.offer(sol(mk, ft));
        }
        let makespans: Vec<f64> = a
            .solutions()
            .iter()
            .map(|s| s.objectives.makespan)
            .collect();
        assert_eq!(makespans, vec![1.0, 2.0, 4.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CrowdingArchive::new(0);
    }
}
