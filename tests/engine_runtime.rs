//! Cross-engine contract tests of the shared engine runtime: every
//! metaheuristic in the workspace runs through the same
//! `Metaheuristic` + `Runner` machinery, honours its budget exactly,
//! and is a pure function of its seed — including the parallel
//! synchronous cellular sweep, which must be bit-identical to its own
//! single-threaded execution.

use cmags::mo::{MoCellConfig, MoCellEngine, Nsga2Config, Nsga2Engine};
use cmags::prelude::*;
use cmags_cma::CmaEngine;

fn problem() -> Problem {
    let class: InstanceClass = "u_c_hihi.0".parse().unwrap();
    Problem::from_instance(&braun::generate(class.with_dims(96, 8), 0))
}

/// Golden-seed determinism through the *trait object* interface: two
/// boxed engines of every kind, driven by the same `Runner` with the
/// same seed, land on identical best fitness/objectives and counters.
#[test]
fn every_engine_is_deterministic_per_seed_through_the_runner() {
    let p = problem();
    let stop = StopCondition::children(150);
    let seed = 42;

    let cma = CmaConfig::paper();
    let braun_ga = BraunGa {
        population_size: 12,
        ..BraunGa::default()
    };
    let ss = SteadyStateGa {
        population_size: 12,
        ..SteadyStateGa::default()
    };
    let struggle = StruggleGa {
        population_size: 12,
        ..StruggleGa::default()
    };
    let pma = PanmicticMa {
        population_size: 12,
        ..PanmicticMa::default()
    };
    let sa = SimulatedAnnealing::default();
    let tabu = TabuSearch::default();
    let gsa = GeneticSimulatedAnnealing {
        population_size: 12,
        ..GeneticSimulatedAnnealing::default()
    };
    let mocell = MoCellConfig::suggested();
    let nsga2 = Nsga2Config::suggested().with_population(12);

    type EngineFactory<'a> = Box<dyn Fn() -> Box<dyn Metaheuristic + 'a> + 'a>;
    let engines: Vec<(&str, EngineFactory<'_>)> = vec![
        ("cMA", Box::new(|| Box::new(CmaEngine::new(&cma, &p, seed)))),
        ("Braun GA", Box::new(|| Box::new(braun_ga.engine(&p, seed)))),
        ("SS-GA", Box::new(|| Box::new(ss.engine(&p, seed)))),
        (
            "Struggle GA",
            Box::new(|| Box::new(struggle.engine(&p, seed))),
        ),
        ("Panmictic MA", Box::new(|| Box::new(pma.engine(&p, seed)))),
        ("SA", Box::new(|| Box::new(sa.engine(&p, seed)))),
        ("Tabu", Box::new(|| Box::new(tabu.engine(&p, seed)))),
        ("GSA", Box::new(|| Box::new(gsa.engine(&p, seed)))),
        (
            "MoCell",
            Box::new(|| Box::new(MoCellEngine::new(&mocell, &p, seed))),
        ),
        (
            "NSGA-II",
            Box::new(|| Box::new(Nsga2Engine::new(&nsga2, &p, seed))),
        ),
    ];

    let runner = Runner::new(stop);
    for (name, make) in engines {
        let run = || {
            let mut engine = make();
            assert_eq!(engine.name(), name, "engine reports its display name");
            let stats = runner.run(engine.as_mut(), &mut []);
            (stats, engine.best_fitness(), engine.best_objectives())
        };
        let (stats_a, fitness_a, objectives_a) = run();
        let (stats_b, fitness_b, objectives_b) = run();

        assert_eq!(
            stats_a.children, 150,
            "{name}: children budget must be exact"
        );
        assert_eq!(stats_a.children, stats_b.children, "{name}");
        assert_eq!(stats_a.iterations, stats_b.iterations, "{name}");
        assert_eq!(
            fitness_a, fitness_b,
            "{name}: fitness must be a pure function of the seed"
        );
        assert_eq!(objectives_a, objectives_b, "{name}");
        assert!(fitness_a.is_finite(), "{name}: best fitness must be finite");
    }
}

/// Different seeds explore differently (overwhelmingly likely) — the
/// determinism above is not degenerate constancy.
#[test]
fn different_seeds_differ() {
    let p = problem();
    let stop = StopCondition::children(150);
    let config = CmaConfig::paper().with_stop(stop);
    assert_ne!(config.run(&p, 1).schedule, config.run(&p, 2).schedule);
}

/// The parallel synchronous sweep is bit-for-bit identical to its own
/// single-threaded execution: same best schedule, same counters, same
/// trace fitness values, for every thread count.
#[test]
fn parallel_synchronous_sweep_matches_single_threaded_bit_for_bit() {
    let p = problem();
    let base = CmaConfig::paper()
        .with_update_policy(UpdatePolicy::Synchronous)
        .with_stop(StopCondition::iterations(3));

    let reference = base.clone().with_threads(1).run(&p, 7);
    for threads in [2, 4, 7] {
        let outcome = base.clone().with_threads(threads).run(&p, 7);
        assert_eq!(reference.schedule, outcome.schedule, "{threads} threads");
        assert_eq!(
            reference.objectives, outcome.objectives,
            "{threads} threads"
        );
        assert_eq!(reference.fitness, outcome.fitness, "{threads} threads");
        assert_eq!(reference.children, outcome.children, "{threads} threads");
        assert_eq!(reference.accepted, outcome.accepted, "{threads} threads");
        assert_eq!(
            reference.ls_improvements, outcome.ls_improvements,
            "{threads} threads"
        );
        // Compare traces on their deterministic identity; `elapsed_ms`
        // is wall-clock and informational-only.
        let keys = |o: &CmaOutcome| o.trace.iter().map(|t| t.key()).collect::<Vec<_>>();
        assert_eq!(keys(&reference), keys(&outcome), "{threads} threads");
    }
}

/// A custom observer plugged into the shared runner sees a monotone
/// improvement stream — the pluggable-telemetry contract.
#[test]
fn custom_observer_sees_monotone_improvements() {
    struct Monotone {
        fitness: Vec<f64>,
    }
    impl Observer for Monotone {
        fn on_improvement(&mut self, snapshot: &Snapshot) {
            self.fitness.push(snapshot.fitness);
        }
    }

    let p = problem();
    let config = CmaConfig::paper();
    let mut engine = CmaEngine::new(&config, &p, 5);
    let mut observer = Monotone {
        fitness: Vec::new(),
    };
    Runner::new(StopCondition::children(200)).run(&mut engine, &mut [&mut observer]);
    assert!(
        !observer.fitness.is_empty(),
        "200 children must improve on the initial population at least once"
    );
    assert!(observer.fitness.windows(2).all(|w| w[1] < w[0]));
}

/// The stock telemetry sink plugged into the same runner accumulates
/// run/improvement counters and a children histogram under its prefix —
/// and, because it never records wall-clock, its registry is identical
/// across repeat runs of the same seed.
#[test]
fn metrics_sink_accumulates_deterministic_engine_counters() {
    use cmags::prelude::MetricsSink;

    let p = problem();
    let config = CmaConfig::paper();
    let registries: Vec<_> = (0..2)
        .map(|_| {
            let mut engine = CmaEngine::new(&config, &p, 5);
            let mut sink = MetricsSink::new("engine.cma.");
            Runner::new(StopCondition::children(200)).run(&mut engine, &mut [&mut sink]);
            sink.into_registry()
        })
        .collect();
    let registry = &registries[0];
    assert_eq!(registry.counter_value("engine.cma.runs"), 1);
    assert_eq!(registry.counter_value("engine.cma.finishes"), 1);
    assert_eq!(registry.counter_value("engine.cma.children"), 200);
    let improvements = registry.counter_value("engine.cma.improvements");
    assert!(improvements > 0, "the cMA improves within 200 children");
    let hist = registry
        .get_histogram("engine.cma.improvement_children")
        .expect("improvements recorded");
    assert_eq!(hist.count(), improvements);
    assert_eq!(
        format!("{:?}", registries[0]),
        format!("{:?}", registries[1]),
        "wall-clock never leaks into the sink"
    );
}
