//! DYN: the dynamic-scheduler experiment (paper §1/§6 claim).
//!
//! Runs the discrete-event simulator with the cMA in periodic batch mode
//! against the racing portfolio and the fast constructive baselines,
//! sweeping the whole [`ScenarioFamily`] catalog (calm, churny, bursty,
//! diurnal, flash-crowd, degrading, volatile) — or the `--families`
//! subset — and, when `--lambda` names several response weights, the
//! tunable objective axis: each λ retargets the metaheuristic batch
//! schedulers at `(1-λ)·classic_fitness + λ·mean_flowtime`, probing
//! whether they can close the mean-response gap to Min-Min.

use cmags_cma::StopCondition;
use cmags_core::Objective;
use cmags_gridsim::scheduler::{
    BatchScheduler, CmaScheduler, HeuristicScheduler, PortfolioScheduler, RandomScheduler,
};
use cmags_gridsim::{ScenarioFamily, SimConfig, Simulation};
use cmags_heuristics::constructive::ConstructiveKind;

use crate::args::Ctx;
use crate::report::{fmt_value, Table};

/// The λ-targetable metaheuristic schedulers of the roster (the racing
/// portfolio gets the same per-activation budget as the cMA — children
/// split across its contenders, time/target bounds capping the whole
/// race — so the comparison is equal-effort on every axis).
fn metaheuristics(budget: StopCondition, objective: Objective) -> Vec<Box<dyn BatchScheduler>> {
    vec![
        Box::new(CmaScheduler::new(budget).with_objective(objective)),
        Box::new(PortfolioScheduler::new(budget).with_objective(objective)),
    ]
}

/// The λ-independent constructive baselines.
fn baselines() -> Vec<Box<dyn BatchScheduler>> {
    vec![
        Box::new(HeuristicScheduler::new(ConstructiveKind::MinMin)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::Mct)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::Olb)),
        Box::new(RandomScheduler),
    ]
}

/// Builds the scheduler roster shared by the experiment tables and the
/// [`scenario_sweep`]: the objective-retargeted metaheuristics plus
/// (when `with_baselines`) the constructive baselines.
fn roster(
    budget: StopCondition,
    objective: Objective,
    with_baselines: bool,
) -> Vec<Box<dyn BatchScheduler>> {
    let mut schedulers = metaheuristics(budget, objective);
    if with_baselines {
        schedulers.extend(baselines());
    }
    schedulers
}

/// Column headers of the scenario tables.
const SCENARIO_COLUMNS: [&str; 9] = [
    "Scheduler",
    "jobs",
    "resub",
    "makespan",
    "mean response",
    "mean wait",
    "util %",
    "activations",
    "sched wall s",
];

/// Runs `schedulers` over one scenario and renders one row per run.
fn scenario_rows(
    schedulers: Vec<Box<dyn BatchScheduler>>,
    config: &SimConfig,
    seed: u64,
) -> Vec<Vec<String>> {
    schedulers
        .into_iter()
        .map(|mut scheduler| {
            let report = Simulation::new(config.clone(), seed).run(scheduler.as_mut());
            vec![
                report.scheduler.clone(),
                report.jobs_completed.to_string(),
                report.resubmissions.to_string(),
                fmt_value(report.realized_makespan),
                fmt_value(report.mean_response()),
                fmt_value(report.mean_wait()),
                format!("{:.1}", report.utilization() * 100.0),
                report.activations.to_string(),
                format!("{:.3}", report.scheduler_wall_s),
            ]
        })
        .collect()
}

/// Runs one scenario for every scheduler and tabulates the realized
/// metrics.
#[must_use]
pub fn scenario_table(
    title: &str,
    config: &SimConfig,
    seed: u64,
    cma_budget: StopCondition,
    objective: Objective,
) -> Table {
    let mut table = Table::new(title, &SCENARIO_COLUMNS);
    for row in scenario_rows(roster(cma_budget, objective, true), config, seed) {
        table.push_row(row);
    }
    table
}

/// The full dynamic experiment: one table per scenario family in the
/// context's sweep (default: the whole catalog) and per `--lambda`
/// response weight (default: classic only).
#[must_use]
pub fn dynamic(ctx: &Ctx) -> Vec<Table> {
    // Scale the per-activation cMA budget off the context: the dynamic
    // claim is about *short* activations.
    let budget = StopCondition::children(2_000).and_time(
        ctx.stop
            .time_limit
            .unwrap_or_else(|| std::time::Duration::from_millis(500)),
    );
    let mut tables = Vec::new();
    for &family in &ctx.families {
        let config = SimConfig::from_family(family);
        // The constructive baselines are λ-independent: simulate them
        // once per family and splice the identical rows into every λ
        // table instead of re-running full simulations per weight.
        let baseline_rows = scenario_rows(baselines(), &config, ctx.seed);
        for &objective in &ctx.lambdas {
            let title = if objective.is_classic() {
                format!("Dynamic grid {family} scenario")
            } else {
                format!("Dynamic grid {family} scenario (λ = {objective})")
            };
            let mut table = Table::new(&title, &SCENARIO_COLUMNS);
            for row in scenario_rows(metaheuristics(budget, objective), &config, ctx.seed)
                .into_iter()
                .chain(baseline_rows.iter().cloned())
            {
                table.push_row(row);
            }
            tables.push(table);
        }
    }
    tables
}

/// One `(family, scheduler, λ)` cell of the scenario sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Scenario family of the run.
    pub family: ScenarioFamily,
    /// Scheduler name (λ-tagged for retargeted metaheuristics).
    pub scheduler: String,
    /// Response weight the scheduler optimised (0 for the λ-independent
    /// baselines).
    pub lambda: f64,
    /// Mean response time per completed job.
    pub mean_response: f64,
    /// Completion time of the last job.
    pub realized_makespan: f64,
    /// Digest of the exogenous event stream — identical across the
    /// whole roster of one `(family, seed)` sweep by construction
    /// (asserted, so a scheduler perturbing the simulation RNG cannot
    /// slip through a bench run unnoticed).
    pub event_digest: u64,
}

/// Sweeps every `(family, scheduler, λ)` cell at one seed — the quality
/// comparison behind `BENCH_scenarios.json`. The λ-independent
/// constructive baselines run once per family; the metaheuristics run
/// once per entry of `objectives`.
///
/// # Panics
///
/// Panics if any simulation loses a job (every submitted job must end
/// completed or, under a fault family's give-up bound, dropped), or
/// if two schedulers of the same `(family, seed)` observe different
/// exogenous event streams.
#[must_use]
pub fn scenario_sweep(
    families: &[ScenarioFamily],
    seed: u64,
    budget: StopCondition,
    objectives: &[Objective],
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &family in families {
        let mut family_digest: Option<u64> = None;
        let mut sweep =
            |schedulers: Vec<Box<dyn BatchScheduler>>, lambda: f64, cells: &mut Vec<SweepCell>| {
                for mut scheduler in schedulers {
                    let config = SimConfig::from_family(family);
                    let report = Simulation::new(config, seed).run(scheduler.as_mut());
                    assert_eq!(
                        report.jobs_completed + report.jobs_dropped,
                        report.jobs_submitted,
                        "{family}/{}: simulation lost jobs",
                        report.scheduler
                    );
                    let expected = *family_digest.get_or_insert(report.event_digest);
                    assert_eq!(
                        report.event_digest, expected,
                        "{family}/{}: scheduler perturbed the exogenous event stream",
                        report.scheduler
                    );
                    cells.push(SweepCell {
                        family,
                        lambda,
                        mean_response: report.mean_response(),
                        realized_makespan: report.realized_makespan,
                        event_digest: report.event_digest,
                        scheduler: report.scheduler,
                    });
                }
            };
        // Baselines once per family, always recorded at λ = 0 — they
        // never optimise a scalarisation, whatever the sweep's list.
        sweep(baselines(), 0.0, &mut cells);
        for &objective in objectives {
            sweep(
                metaheuristics(budget, objective),
                objective.lambda(),
                &mut cells,
            );
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::super::test_ctx;
    use super::*;

    #[test]
    fn calm_scenario_ranks_cma_over_random() {
        let t = scenario_table(
            "test calm",
            &SimConfig::small(),
            3,
            StopCondition::children(300),
            Objective::classic(),
        );
        assert_eq!(t.rows.len(), 6);
        let response_of = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))[4]
                .parse()
                .unwrap()
        };
        assert!(
            response_of("cMA") < response_of("Random"),
            "cMA must beat random dispatch on mean response"
        );
        assert!(
            response_of("Portfolio") < response_of("Random"),
            "the racing portfolio must beat random dispatch too"
        );
    }

    #[test]
    fn dynamic_produces_one_table_per_family_and_lambda() {
        let mut ctx = test_ctx(32, 4, 1, 100);
        ctx.families = vec![ScenarioFamily::Calm, ScenarioFamily::Bursty];
        ctx.lambdas = vec![Objective::classic(), Objective::mean_flowtime()];
        let tables = dynamic(&ctx);
        assert_eq!(tables.len(), 4);
        assert!(tables[0].title.contains("calm"));
        assert!(tables[1].title.contains("calm") && tables[1].title.contains("λ = 1"));
        assert!(tables[2].title.contains("bursty"));
        for t in &tables {
            // Every scheduler finished every job.
            for row in &t.rows {
                let jobs: u64 = row[1].parse().unwrap();
                assert!(jobs > 0);
            }
        }
    }

    #[test]
    fn scenario_sweep_covers_every_cell_once_per_lambda() {
        let families = [ScenarioFamily::Calm, ScenarioFamily::FlashCrowd];
        let objectives = [Objective::classic(), Objective::mean_flowtime()];
        let cells = scenario_sweep(&families, 3, StopCondition::children(150), &objectives);
        // Per family: 4 baselines (once, at λ = 0) plus 2 metaheuristics
        // per swept objective.
        assert_eq!(cells.len(), families.len() * (4 + 2 * 2));
        assert!(
            cells
                .iter()
                .filter(
                    |c| !(c.scheduler.starts_with("cMA") || c.scheduler.starts_with("Portfolio"))
                )
                .all(|c| c.lambda == 0.0),
            "baseline cells are always recorded at λ = 0"
        );
        for cell in &cells {
            assert!(families.contains(&cell.family));
            assert!(!cell.scheduler.is_empty());
            assert!(
                cell.mean_response > 0.0 && cell.realized_makespan > 0.0,
                "{}/{}",
                cell.family,
                cell.scheduler
            );
        }
        let tagged = cells.iter().filter(|c| c.lambda == 1.0).count();
        assert_eq!(tagged, families.len() * 2, "λ-tagged metaheuristic cells");
        for family in families {
            let digests: Vec<u64> = cells
                .iter()
                .filter(|c| c.family == family)
                .map(|c| c.event_digest)
                .collect();
            assert!(
                digests.windows(2).all(|w| w[0] == w[1]),
                "{family}: event stream must be identical across the roster"
            );
        }
    }
}
