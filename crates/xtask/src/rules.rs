//! The determinism rule set and the matching engine.
//!
//! Every rule here guards one of the workspace's bit-identity
//! invariants (see the README's *Static analysis* section for the
//! full rationale table):
//!
//! * `no-hash-collections` — randomized-iteration containers
//!   (`HashMap`/`HashSet`/`RandomState`) are banned everywhere: replay
//!   digests and parallel bit-identity depend on deterministic
//!   iteration, so ordered (`BTreeMap`/`BTreeSet`) or dense-id
//!   structures must be used instead.
//! * `no-wall-clock-in-sim` — `Instant::now`/`SystemTime` reads are
//!   confined to the telemetry-profiling module and the bench crate
//!   (the PR 8 tick-vs-wall split); anywhere else each read must carry
//!   a pragma classifying it as informational-only.
//! * `no-ambient-entropy` — `thread_rng`/`from_entropy`/OS randomness
//!   would silently break seeded replay; all randomness must flow from
//!   explicit counter-based streams.
//! * `no-float-in-tick-domain` — tick-domain modules (the event core,
//!   plus any file marked `lint:tick-domain`) must stay on exact
//!   integer arithmetic; float conversions live only at the
//!   `ticks.rs` boundary.
//! * `no-lossy-casts-in-ticks` — `as` casts to narrowing numeric types
//!   in tick-domain modules silently truncate; each one needs a pragma
//!   arguing why it cannot lose bits (widening casts to `i128`/`u128`
//!   are always allowed).
//!
//! Findings are suppressed only by an inline pragma with a mandatory
//! reason:
//!
//! ```text
//! // lint:allow(rule-name): why this occurrence is sound
//! ```
//!
//! A standalone pragma covers the next code line; a trailing pragma
//! covers its own line. Reason-less pragmas, pragmas naming unknown
//! rules, and pragmas that suppress nothing are themselves findings,
//! so suppressions cannot rot silently.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Comment};

/// One rule's identity and documentation, surfaced by `-- rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name, as used in pragmas.
    pub name: &'static str,
    /// One-line description of what the rule flags.
    pub what: &'static str,
    /// Which determinism pin the rule protects.
    pub why: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// The rule registry (suppressible rules; the `pragma-*` meta findings
/// are always on and cannot be suppressed).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-hash-collections",
        what: "`HashMap`/`HashSet`/`RandomState` (randomized iteration order)",
        why: "replay digests and 1/2/8-thread bit-identity require deterministic iteration; \
              use BTreeMap/BTreeSet or dense-id slabs",
        scope: "all workspace sources",
    },
    RuleInfo {
        name: "no-wall-clock-in-sim",
        what: "`Instant::now()` / any `SystemTime` use (wall-clock reads)",
        why: "tick-domain results must be exact and machine-independent; wall-clock is \
              informational-only and confined to telemetry profiling and the bench crate",
        scope: "all sources except crates/bench/ and crates/core/src/telemetry.rs",
    },
    RuleInfo {
        name: "no-ambient-entropy",
        what: "`thread_rng`/`from_entropy`/`from_os_rng`/`OsRng`/`getrandom` (ambient randomness)",
        why: "seeded replay requires every random draw to come from an explicit counter-based \
              stream keyed by (seed, stream, entity)",
        scope: "all workspace sources",
    },
    RuleInfo {
        name: "no-float-in-tick-domain",
        what: "`f64`/`f32` types, suffixes, or float literals",
        why: "tick modules compute digests and event ordering on exact i64/i128 arithmetic; \
              float conversions live only in cmags_core::ticks",
        scope: "crates/gridsim/src/{event,shard}.rs and files marked `lint:tick-domain`",
    },
    RuleInfo {
        name: "no-lossy-casts-in-ticks",
        what: "`as` casts to narrowing numeric types",
        why: "silent `as` truncation in tick arithmetic corrupts digests without panicking; \
              prove each cast lossless in a pragma or use try_from/widening",
        scope: "crates/gridsim/src/{event,shard}.rs and files marked `lint:tick-domain`",
    },
];

/// Always-on meta rules protecting the pragma mechanism itself.
pub const META_RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "pragma-missing-reason",
        what: "`lint:allow(rule)` without a `: reason` clause",
        why: "every suppression must document why the occurrence is sound",
        scope: "all workspace sources",
    },
    RuleInfo {
        name: "pragma-unknown-rule",
        what: "`lint:allow(...)` naming a rule that does not exist",
        why: "a typo'd pragma suppresses nothing and hides the author's intent",
        scope: "all workspace sources",
    },
    RuleInfo {
        name: "pragma-unused",
        what: "a pragma that suppressed no finding",
        why: "stale suppressions accumulate and mask future regressions",
        scope: "all workspace sources",
    },
];

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Identifiers banned by `no-hash-collections`.
const HASH_TOKENS: &[&str] = &["HashMap", "HashSet", "RandomState"];

/// Identifiers banned by `no-ambient-entropy`.
const ENTROPY_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
];

/// Narrowing-capable `as` targets flagged by `no-lossy-casts-in-ticks`
/// (widening to `i128`/`u128` is always allowed).
const NARROW_CAST_TARGETS: &[&str] = &[
    "i8", "i16", "i32", "i64", "isize", "u8", "u16", "u32", "u64", "usize", "f32", "f64",
];

/// Paths (prefix `/`-separated, workspace-relative) where wall-clock
/// reads are legitimate by construction.
fn wall_clock_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/") || path == "crates/core/src/telemetry.rs"
}

/// Whether `path` is a tick-domain module: the event core — the queue
/// backends and the sharded multi-loop merge — is always in scope;
/// other files opt in with a `lint:tick-domain` marker comment.
/// `cmags_core::ticks` is the designated float<->tick conversion
/// boundary and is never in scope, marker or not.
fn tick_domain(path: &str, marked: bool) -> bool {
    if path == "crates/core/src/ticks.rs" {
        return false;
    }
    marked || path == "crates/gridsim/src/event.rs" || path == "crates/gridsim/src/shard.rs"
}

/// A parsed `lint:allow` pragma.
#[derive(Debug)]
struct Pragma {
    rule: String,
    /// Line whose findings this pragma suppresses.
    target: usize,
    /// Line the pragma itself sits on (for `pragma-unused` reports).
    line: usize,
    used: bool,
}

/// Lints one file's source text. `path` must be workspace-relative with
/// `/` separators — rule scoping keys off it.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let code_lines: Vec<&str> = lexed.masked.lines().collect();
    let is_code = |line: usize| {
        code_lines
            .get(line - 1)
            .is_some_and(|l| !l.trim().is_empty())
    };

    let mut findings: Vec<Finding> = Vec::new();
    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut tick_marked = false;

    for comment in &lexed.comments {
        scan_comment(
            comment,
            &is_code,
            code_lines.len(),
            path,
            &mut pragmas,
            &mut tick_marked,
            &mut findings,
        );
    }

    let in_tick_domain = tick_domain(path, tick_marked);
    let mut raw: Vec<Finding> = Vec::new();
    scan_tokens(path, &lexed.masked, in_tick_domain, &mut raw);

    // Apply suppressions: a finding survives unless a pragma for its
    // rule targets its line.
    let mut suppressed: BTreeMap<(String, usize), Vec<usize>> = BTreeMap::new();
    for (idx, pragma) in pragmas.iter().enumerate() {
        suppressed
            .entry((pragma.rule.clone(), pragma.target))
            .or_default()
            .push(idx);
    }
    for finding in raw {
        if let Some(indices) = suppressed.get(&(finding.rule.to_string(), finding.line)) {
            for &idx in indices {
                pragmas[idx].used = true;
            }
        } else {
            findings.push(finding);
        }
    }

    for pragma in &pragmas {
        if !pragma.used {
            findings.push(Finding {
                path: path.to_string(),
                line: pragma.line,
                rule: "pragma-unused",
                message: format!(
                    "lint:allow({}) suppressed nothing on line {} — remove the stale pragma",
                    pragma.rule, pragma.target
                ),
            });
        }
    }

    findings.sort();
    findings
}

/// Parses pragma directives out of one comment.
fn scan_comment(
    comment: &Comment,
    is_code: &dyn Fn(usize) -> bool,
    nb_lines: usize,
    path: &str,
    pragmas: &mut Vec<Pragma>,
    tick_marked: &mut bool,
    findings: &mut Vec<Finding>,
) {
    // A directive must *start* the comment (after whitespace), so prose
    // that merely mentions the syntax is never parsed as a pragma.
    let text = comment.text.trim();
    if text.starts_with("lint:tick-domain") {
        *tick_marked = true;
        return;
    }
    let Some(rest) = text.strip_prefix("lint:allow") else {
        return;
    };
    let Some(open) = rest.strip_prefix('(') else {
        findings.push(Finding {
            path: path.to_string(),
            line: comment.line,
            rule: "pragma-unknown-rule",
            message: "malformed pragma: expected `lint:allow(rule): reason`".to_string(),
        });
        return;
    };
    let Some(close) = open.find(')') else {
        findings.push(Finding {
            path: path.to_string(),
            line: comment.line,
            rule: "pragma-unknown-rule",
            message: "malformed pragma: unclosed `(` in `lint:allow(rule): reason`".to_string(),
        });
        return;
    };
    let rule = open[..close].trim().to_string();
    if !RULES.iter().any(|r| r.name == rule) {
        findings.push(Finding {
            path: path.to_string(),
            line: comment.line,
            rule: "pragma-unknown-rule",
            message: format!("pragma names unknown rule `{rule}`"),
        });
        return;
    }
    let after = open[close + 1..].trim();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        findings.push(Finding {
            path: path.to_string(),
            line: comment.line,
            rule: "pragma-missing-reason",
            message: format!(
                "lint:allow({rule}) needs a reason: `// lint:allow({rule}): why this is sound`"
            ),
        });
        return;
    }
    // A trailing pragma covers its own line; a standalone pragma covers
    // the next line that carries code.
    let target = if comment.trailing {
        comment.line
    } else {
        let mut next = comment.line + 1;
        while next <= nb_lines && !is_code(next) {
            next += 1;
        }
        next
    };
    pragmas.push(Pragma {
        rule,
        target,
        line: comment.line,
        used: false,
    });
}

/// Scans the masked source for rule-token matches.
fn scan_tokens(path: &str, masked: &str, in_tick_domain: bool, out: &mut Vec<Finding>) {
    let hash_on = true;
    let entropy_on = true;
    let wall_on = !wall_clock_exempt(path);

    let bytes = masked.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    let is_word_byte = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if !is_word_byte(b) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_word_byte(bytes[i]) {
            i += 1;
        }
        let word = &masked[start..i];
        let starts_with_digit = word.as_bytes()[0].is_ascii_digit();

        if !starts_with_digit {
            if hash_on && HASH_TOKENS.contains(&word) {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-hash-collections",
                    message: format!(
                        "`{word}` has a randomized iteration/hash order; use BTreeMap/BTreeSet \
                         or a dense-id structure"
                    ),
                });
            }
            if entropy_on && ENTROPY_TOKENS.contains(&word) {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-ambient-entropy",
                    message: format!(
                        "`{word}` draws ambient OS entropy; all randomness must come from \
                         explicit seeded counter-based streams"
                    ),
                });
            }
            if wall_on && word == "SystemTime" {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-wall-clock-in-sim",
                    message: "`SystemTime` is wall-clock; nothing outside telemetry/bench may \
                              read host time"
                        .to_string(),
                });
            }
            if wall_on && word == "Instant" && path_call_follows(bytes, i, "now") {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-wall-clock-in-sim",
                    message: "`Instant::now()` reads the host clock; outside telemetry/bench \
                              each read must be pragma-classified as informational-only"
                        .to_string(),
                });
            }
            if in_tick_domain && (word == "f64" || word == "f32") {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-float-in-tick-domain",
                    message: format!(
                        "`{word}` in a tick-domain module; tick arithmetic is exact i64/i128 \
                         and float conversion lives in cmags_core::ticks"
                    ),
                });
            }
            if in_tick_domain && word == "as" {
                if let Some(target) = next_word(bytes, masked, i) {
                    if NARROW_CAST_TARGETS.contains(&target) {
                        out.push(Finding {
                            path: path.to_string(),
                            line,
                            rule: "no-lossy-casts-in-ticks",
                            message: format!(
                                "`as {target}` can silently truncate in tick arithmetic; \
                                 prove it lossless in a pragma or use try_from/widening"
                            ),
                        });
                    }
                }
            }
        } else if in_tick_domain {
            // Numeric token: float suffix (`1f64`) or `1.5` literal.
            if word.contains("f64") || word.contains("f32") {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-float-in-tick-domain",
                    message: format!("float-suffixed literal `{word}` in a tick-domain module"),
                });
            } else if bytes.get(i) == Some(&b'.')
                && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
            {
                out.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "no-float-in-tick-domain",
                    message: "float literal in a tick-domain module".to_string(),
                });
            }
        }
    }
}

/// After a word ending at byte `i`, whether `::<name>` follows (over
/// whitespace, including newlines — the finding stays on the first
/// word's line).
fn path_call_follows(bytes: &[u8], i: usize, name: &str) -> bool {
    let mut j = i;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if !bytes[j..].starts_with(b"::") {
        return false;
    }
    j += 2;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    bytes[j..].starts_with(name.as_bytes())
        && !bytes
            .get(j + name.len())
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// The next identifier-ish word after byte `i`, skipping whitespace.
fn next_word<'a>(bytes: &[u8], masked: &'a str, i: usize) -> Option<&'a str> {
    let mut j = i;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    (j > start).then(|| &masked[start..j])
}

/// All rule names, for validation and docs.
pub fn rule_names() -> BTreeSet<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8>; }\n";
        let findings = lint_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "no-hash-collections"));
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap is banned\nfn f() -> &'static str { \"HashMap thread_rng\" }\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn instant_now_flagged_but_type_position_is_not() {
        let src = "fn f(start: Instant) {}\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["no-wall-clock-in-sim"]
        );
    }

    #[test]
    fn shard_module_is_always_tick_domain() {
        // The sharded event core carries the same exactness obligations
        // as the queue backends: floats and narrowing casts are flagged
        // without any marker comment.
        let src = "fn f() { let x: f64 = 1.5; let y = 3i64 as u32; }\n";
        let rules = rules_hit("crates/gridsim/src/shard.rs", src);
        assert!(rules.contains(&"no-float-in-tick-domain"));
        assert!(rules.contains(&"no-lossy-casts-in-ticks"));
        // Site topology/snapshot code deals in ETC floats by design and
        // stays out of scope unless marked.
        assert!(rules_hit("crates/gridsim/src/site.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_exempt_paths() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(rules_hit("crates/bench/src/runner.rs", src).is_empty());
        assert!(rules_hit("crates/core/src/telemetry.rs", src).is_empty());
        assert!(!rules_hit("crates/core/src/eval.rs", src).is_empty());
    }

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src =
            "fn f() { let t = Instant::now(); } // lint:allow(no-wall-clock-in-sim): informational\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn standalone_pragma_suppresses_next_code_line() {
        let src = "// lint:allow(no-wall-clock-in-sim): informational\n// more commentary\nlet t = Instant::now();\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let src = "// lint:allow(no-wall-clock-in-sim)\nlet t = Instant::now();\n";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert!(rules.contains(&"pragma-missing-reason"));
        assert!(rules.contains(&"no-wall-clock-in-sim"), "not suppressed");
    }

    #[test]
    fn pragma_with_empty_reason_is_a_finding() {
        let src = "// lint:allow(no-wall-clock-in-sim):   \nlet t = Instant::now();\n";
        assert!(rules_hit("crates/core/src/x.rs", src).contains(&"pragma-missing-reason"));
    }

    #[test]
    fn unknown_rule_pragma_is_a_finding() {
        let src = "// lint:allow(no-such-rule): because\nfn f() {}\n";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["pragma-unknown-rule"]
        );
    }

    #[test]
    fn unused_pragma_is_a_finding() {
        let src = "// lint:allow(no-hash-collections): nothing here\nfn f() {}\n";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec!["pragma-unused"]
        );
    }

    #[test]
    fn tick_domain_marker_enables_float_and_cast_rules() {
        let plain = "fn f(x: f64) -> u32 { x as u32 }\n";
        assert!(rules_hit("crates/core/src/x.rs", plain).is_empty());
        let marked = format!("// lint:tick-domain\n{plain}");
        let rules = rules_hit("crates/core/src/x.rs", &marked);
        assert!(rules.contains(&"no-float-in-tick-domain"));
        assert!(rules.contains(&"no-lossy-casts-in-ticks"));
    }

    #[test]
    fn event_core_is_tick_domain_by_construction() {
        let src = "fn f() { let x = 0.5; }\n";
        assert_eq!(
            rules_hit("crates/gridsim/src/event.rs", src),
            vec!["no-float-in-tick-domain"]
        );
    }

    #[test]
    fn ticks_rs_is_the_conversion_boundary() {
        let src = "// lint:tick-domain\npub fn time(t: i128) -> f64 { t as f64 }\n";
        assert!(rules_hit("crates/core/src/ticks.rs", src).is_empty());
    }

    #[test]
    fn widening_casts_are_allowed_in_tick_domain() {
        let src = "// lint:tick-domain\nfn f(x: i64) -> i128 { x as i128 }\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_suffix_and_literal_flagged_in_tick_domain() {
        let src = "// lint:tick-domain\nfn f() { let a = 1f64; let b = 2.5; }\n";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert_eq!(
            rules,
            vec!["no-float-in-tick-domain", "no-float-in-tick-domain"]
        );
    }

    #[test]
    fn range_and_tuple_index_are_not_float_literals() {
        let src =
            "// lint:tick-domain\nfn f(t: (i64, i64)) -> i64 { (0..5).map(|i| i + t.0).sum() }\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn ambient_entropy_flagged() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(
            rules_hit("crates/heuristics/src/x.rs", src),
            vec!["no-ambient-entropy"]
        );
    }

    #[test]
    fn use_foo_as_bar_is_not_a_cast() {
        let src = "// lint:tick-domain\nuse std::mem::take as grab;\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_sort_by_path_then_line() {
        let src = "use std::collections::HashSet;\nfn f() { let s: HashSet<u8>; }\n";
        let findings = lint_source("crates/mo/src/x.rs", src);
        assert!(findings.windows(2).all(|w| w[0] <= w[1]));
    }
}
