//! Incremental (delta) evaluation of schedules.
//!
//! Local search over this problem probes thousands of single-job moves and
//! job swaps per second; re-evaluating the full schedule for each probe
//! would cost `O(jobs · log jobs)`. [`EvalState`] instead keeps, per
//! machine, the SPT-sorted list of assigned ETC values together with the
//! machine's completion time and flowtime, so that
//!
//! * **peeking** a move/swap (computing the objectives it *would* produce)
//!   costs one merge pass over the two affected machines, and
//! * **applying** a move/swap costs the same plus two `memmove`s.
//!
//! Totals (makespan, flowtime) are re-derived from the per-machine caches
//! with an `O(nb_machines)` fold after every change, which keeps them
//! bit-for-bit equal to a from-scratch [`crate::evaluate`] — a property the
//! test-suite checks exhaustively.

use crate::{evaluate, JobId, MachineId, Objectives, Problem, Schedule};

/// One job occupying a position in a machine's SPT order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    etc: f64,
    job: JobId,
}

impl Slot {
    /// Total order: by ETC, ties by job id — deterministic and consistent
    /// with the job-order-insensitive flowtime value.
    #[inline]
    fn key_cmp(&self, other: &Slot) -> std::cmp::Ordering {
        self.etc
            .total_cmp(&other.etc)
            .then(self.job.cmp(&other.job))
    }
}

/// Cached evaluation of one machine.
#[derive(Debug, Clone, PartialEq)]
struct MachineState {
    ready: f64,
    /// Jobs on the machine, sorted ascending by `(etc, job)`.
    slots: Vec<Slot>,
    /// `ready + Σ etc` (ready when idle).
    completion: f64,
    /// Sum of finishing times under SPT order.
    flowtime: f64,
}

impl MachineState {
    fn new(ready: f64) -> Self {
        Self {
            ready,
            slots: Vec::new(),
            completion: ready,
            flowtime: 0.0,
        }
    }

    /// Recomputes `completion` and `flowtime` from the slot list.
    fn rebuild(&mut self) {
        let mut clock = self.ready;
        let mut flowtime = 0.0;
        for slot in &self.slots {
            clock += slot.etc;
            flowtime += clock;
        }
        self.completion = clock;
        self.flowtime = flowtime;
    }

    /// Position of `job` (with ETC `etc`) in the slot list.
    fn position_of(&self, job: JobId, etc: f64) -> usize {
        let probe = Slot { etc, job };
        let idx = self
            .slots
            .partition_point(|s| s.key_cmp(&probe) == std::cmp::Ordering::Less);
        debug_assert!(
            idx < self.slots.len() && self.slots[idx].job == job,
            "job {job} not found on its machine"
        );
        idx
    }

    fn insert(&mut self, job: JobId, etc: f64) {
        let probe = Slot { etc, job };
        let idx = self
            .slots
            .partition_point(|s| s.key_cmp(&probe) == std::cmp::Ordering::Less);
        self.slots.insert(idx, probe);
        self.rebuild();
    }

    fn remove(&mut self, job: JobId, etc: f64) {
        let idx = self.position_of(job, etc);
        self.slots.remove(idx);
        self.rebuild();
    }

    /// Completion and flowtime this machine *would* have if `skip_job`
    /// were removed and/or a job `add` were inserted, in one allocation-free
    /// merge pass.
    fn simulate(&self, skip_job: Option<JobId>, add: Option<Slot>) -> (f64, f64) {
        let mut clock = self.ready;
        let mut flowtime = 0.0;
        let mut pending = add;
        for slot in &self.slots {
            if Some(slot.job) == skip_job {
                continue;
            }
            if let Some(p) = pending {
                if p.key_cmp(slot) == std::cmp::Ordering::Less {
                    clock += p.etc;
                    flowtime += clock;
                    pending = None;
                }
            }
            clock += slot.etc;
            flowtime += clock;
        }
        if let Some(p) = pending {
            clock += p.etc;
            flowtime += clock;
        }
        (clock, flowtime)
    }
}

/// Incrementally maintained evaluation of a schedule.
///
/// Construct once per schedule with [`EvalState::new`], then keep it in
/// lockstep with the schedule through [`EvalState::apply_move`] /
/// [`EvalState::apply_swap`]. Probing neighbours without committing uses
/// [`EvalState::peek_move`] / [`EvalState::peek_swap`].
///
/// The state is value-like (`Clone`) so population-based algorithms clone
/// it together with the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalState {
    machines: Vec<MachineState>,
    makespan: f64,
    flowtime: f64,
}

impl EvalState {
    /// Builds the cache for `schedule` in `O(jobs · log jobs)`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule length mismatches the problem (debug) or any
    /// machine index is out of range.
    #[must_use]
    pub fn new(problem: &Problem, schedule: &Schedule) -> Self {
        debug_assert_eq!(schedule.nb_jobs(), problem.nb_jobs());
        let mut machines: Vec<MachineState> = (0..problem.nb_machines())
            .map(|m| MachineState::new(problem.ready(m as u32)))
            .collect();
        for (job, machine) in schedule.iter() {
            machines[machine as usize].slots.push(Slot {
                etc: problem.etc(job, machine),
                job,
            });
        }
        for machine in &mut machines {
            machine.slots.sort_by(Slot::key_cmp);
            machine.rebuild();
        }
        let mut state = Self {
            machines,
            makespan: 0.0,
            flowtime: 0.0,
        };
        state.refresh_totals();
        state
    }

    /// Current makespan.
    #[inline]
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Current flowtime.
    #[inline]
    #[must_use]
    pub fn flowtime(&self) -> f64 {
        self.flowtime
    }

    /// Current objective pair.
    #[inline]
    #[must_use]
    pub fn objectives(&self) -> Objectives {
        Objectives {
            makespan: self.makespan,
            flowtime: self.flowtime,
        }
    }

    /// Scalarised fitness under the problem's weights.
    #[inline]
    #[must_use]
    pub fn fitness(&self, problem: &Problem) -> f64 {
        problem.fitness(self.objectives())
    }

    /// Completion time of one machine (Eq. 1).
    #[inline]
    #[must_use]
    pub fn completion(&self, machine: MachineId) -> f64 {
        self.machines[machine as usize].completion
    }

    /// Flowtime contributed by one machine.
    #[inline]
    #[must_use]
    pub fn machine_flowtime(&self, machine: MachineId) -> f64 {
        self.machines[machine as usize].flowtime
    }

    /// Number of jobs currently on `machine`.
    #[inline]
    #[must_use]
    pub fn machine_len(&self, machine: MachineId) -> usize {
        self.machines[machine as usize].slots.len()
    }

    /// Load factor of a machine: `completion[m] / makespan` ∈ (0, 1]
    /// (paper §3.2, mutation operator).
    #[must_use]
    pub fn load_factor(&self, machine: MachineId) -> f64 {
        if self.makespan == 0.0 {
            1.0
        } else {
            self.completion(machine) / self.makespan
        }
    }

    /// Machines sorted ascending by completion time (ties by index) —
    /// "less overloaded first", as the rebalance mutation requires.
    #[must_use]
    pub fn machines_by_completion(&self) -> Vec<MachineId> {
        let mut order: Vec<MachineId> = (0..self.machines.len() as MachineId).collect();
        order.sort_by(|&a, &b| {
            self.machines[a as usize]
                .completion
                .total_cmp(&self.machines[b as usize].completion)
                .then(a.cmp(&b))
        });
        order
    }

    /// Objectives the schedule would have after moving `job` to `to`.
    ///
    /// Costs one merge pass over the two affected machines; no state is
    /// modified.
    #[must_use]
    pub fn peek_move(
        &self,
        problem: &Problem,
        schedule: &Schedule,
        job: JobId,
        to: MachineId,
    ) -> Objectives {
        let from = schedule.machine_of(job);
        if from == to {
            return self.objectives();
        }
        let (donor_completion, donor_flowtime) =
            self.machines[from as usize].simulate(Some(job), None);
        let (rcpt_completion, rcpt_flowtime) = self.machines[to as usize].simulate(
            None,
            Some(Slot {
                etc: problem.etc(job, to),
                job,
            }),
        );
        self.totals_with_two(
            from,
            donor_completion,
            donor_flowtime,
            to,
            rcpt_completion,
            rcpt_flowtime,
        )
    }

    /// Objectives the schedule would have after swapping the machines of
    /// `job_a` and `job_b`.
    ///
    /// Returns the current objectives unchanged if both jobs share a
    /// machine (an SPT-order swap on one machine is a no-op).
    #[must_use]
    pub fn peek_swap(
        &self,
        problem: &Problem,
        schedule: &Schedule,
        job_a: JobId,
        job_b: JobId,
    ) -> Objectives {
        let ma = schedule.machine_of(job_a);
        let mb = schedule.machine_of(job_b);
        if ma == mb {
            return self.objectives();
        }
        let (ca, fa) = self.machines[ma as usize].simulate(
            Some(job_a),
            Some(Slot {
                etc: problem.etc(job_b, ma),
                job: job_b,
            }),
        );
        let (cb, fb) = self.machines[mb as usize].simulate(
            Some(job_b),
            Some(Slot {
                etc: problem.etc(job_a, mb),
                job: job_a,
            }),
        );
        self.totals_with_two(ma, ca, fa, mb, cb, fb)
    }

    /// Moves `job` to machine `to`, updating schedule and caches.
    pub fn apply_move(
        &mut self,
        problem: &Problem,
        schedule: &mut Schedule,
        job: JobId,
        to: MachineId,
    ) {
        let from = schedule.machine_of(job);
        if from == to {
            return;
        }
        self.machines[from as usize].remove(job, problem.etc(job, from));
        self.machines[to as usize].insert(job, problem.etc(job, to));
        schedule.assign(job, to);
        self.refresh_totals();
    }

    /// Exchanges the machines of `job_a` and `job_b`.
    pub fn apply_swap(
        &mut self,
        problem: &Problem,
        schedule: &mut Schedule,
        job_a: JobId,
        job_b: JobId,
    ) {
        let ma = schedule.machine_of(job_a);
        let mb = schedule.machine_of(job_b);
        if ma == mb {
            return;
        }
        self.machines[ma as usize].remove(job_a, problem.etc(job_a, ma));
        self.machines[mb as usize].remove(job_b, problem.etc(job_b, mb));
        self.machines[ma as usize].insert(job_b, problem.etc(job_b, ma));
        self.machines[mb as usize].insert(job_a, problem.etc(job_a, mb));
        schedule.assign(job_a, mb);
        schedule.assign(job_b, ma);
        self.refresh_totals();
    }

    /// Asserts (in tests and debug builds) that the cache agrees with a
    /// from-scratch evaluation of `schedule`.
    pub fn debug_validate(&self, problem: &Problem, schedule: &Schedule) {
        let fresh = evaluate(problem, schedule);
        assert_eq!(
            self.objectives(),
            fresh,
            "incremental evaluation diverged from full evaluation"
        );
        for (m, machine) in self.machines.iter().enumerate() {
            assert!(
                machine
                    .slots
                    .windows(2)
                    .all(|w| w[0].key_cmp(&w[1]) != std::cmp::Ordering::Greater),
                "machine {m} slot order violated"
            );
        }
    }

    fn refresh_totals(&mut self) {
        let mut makespan = 0.0f64;
        let mut flowtime = 0.0f64;
        for machine in &self.machines {
            makespan = makespan.max(machine.completion);
            flowtime += machine.flowtime;
        }
        self.makespan = makespan;
        self.flowtime = flowtime;
    }

    /// Totals with machines `a` and `b` hypothetically replaced.
    fn totals_with_two(
        &self,
        a: MachineId,
        a_completion: f64,
        a_flowtime: f64,
        b: MachineId,
        b_completion: f64,
        b_flowtime: f64,
    ) -> Objectives {
        let mut makespan = a_completion.max(b_completion);
        let mut flowtime = 0.0f64;
        for (m, machine) in self.machines.iter().enumerate() {
            let m = m as MachineId;
            if m == a {
                flowtime += a_flowtime;
            } else if m == b {
                flowtime += b_flowtime;
            } else {
                makespan = makespan.max(machine.completion);
                flowtime += machine.flowtime;
            }
        }
        Objectives { makespan, flowtime }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_etc::{EtcMatrix, GridInstance};

    fn problem() -> Problem {
        let etc = EtcMatrix::from_rows(
            5,
            3,
            vec![
                2.0, 4.0, 9.0, //
                1.0, 8.0, 3.0, //
                3.0, 2.0, 7.0, //
                5.0, 6.0, 1.0, //
                4.0, 4.0, 4.0,
            ],
        );
        Problem::from_instance(&GridInstance::with_ready_times(
            "t",
            etc,
            vec![1.0, 0.0, 2.0],
        ))
    }

    #[test]
    fn matches_full_evaluation_on_construction() {
        let p = problem();
        let s = Schedule::from_assignment(vec![0, 1, 2, 0, 1]);
        let eval = EvalState::new(&p, &s);
        assert_eq!(eval.objectives(), evaluate(&p, &s));
        eval.debug_validate(&p, &s);
    }

    #[test]
    fn apply_move_tracks_full_evaluation() {
        let p = problem();
        let mut s = Schedule::from_assignment(vec![0, 0, 0, 0, 0]);
        let mut eval = EvalState::new(&p, &s);
        for (job, to) in [(0u32, 1u32), (3, 2), (1, 2), (0, 0), (4, 1), (2, 1)] {
            eval.apply_move(&p, &mut s, job, to);
            eval.debug_validate(&p, &s);
            assert_eq!(s.machine_of(job), to);
        }
    }

    #[test]
    fn peek_move_equals_apply_move() {
        let p = problem();
        let mut s = Schedule::from_assignment(vec![0, 1, 2, 0, 1]);
        let eval = EvalState::new(&p, &s);
        let peeked = eval.peek_move(&p, &s, 3, 2);
        let mut applied = eval.clone();
        applied.apply_move(&p, &mut s, 3, 2);
        assert_eq!(peeked, applied.objectives());
    }

    #[test]
    fn peek_swap_equals_apply_swap() {
        let p = problem();
        let mut s = Schedule::from_assignment(vec![0, 1, 2, 0, 1]);
        let eval = EvalState::new(&p, &s);
        let peeked = eval.peek_swap(&p, &s, 0, 2);
        let mut applied = eval.clone();
        applied.apply_swap(&p, &mut s, 0, 2);
        assert_eq!(peeked, applied.objectives());
        applied.debug_validate(&p, &s);
    }

    #[test]
    fn same_machine_operations_are_noops() {
        let p = problem();
        let mut s = Schedule::from_assignment(vec![0, 0, 1, 1, 2]);
        let mut eval = EvalState::new(&p, &s);
        let before = eval.objectives();
        assert_eq!(eval.peek_move(&p, &s, 0, 0), before);
        assert_eq!(eval.peek_swap(&p, &s, 0, 1), before);
        eval.apply_move(&p, &mut s, 0, 0);
        eval.apply_swap(&p, &mut s, 0, 1);
        assert_eq!(eval.objectives(), before);
    }

    #[test]
    fn completion_and_load_factor() {
        let p = problem();
        let s = Schedule::from_assignment(vec![0, 0, 1, 1, 2]);
        let eval = EvalState::new(&p, &s);
        // m0: ready 1 + (2 + 1) = 4; m1: 0 + (2 + 6) = 8; m2: 2 + 4 = 6.
        assert_eq!(eval.completion(0), 4.0);
        assert_eq!(eval.completion(1), 8.0);
        assert_eq!(eval.completion(2), 6.0);
        assert_eq!(eval.makespan(), 8.0);
        assert!((eval.load_factor(1) - 1.0).abs() < 1e-12);
        assert!((eval.load_factor(0) - 0.5).abs() < 1e-12);
        assert_eq!(eval.machines_by_completion(), vec![0, 2, 1]);
    }

    #[test]
    fn machine_len_tracks_assignments() {
        let p = problem();
        let mut s = Schedule::uniform(5, 0);
        let mut eval = EvalState::new(&p, &s);
        assert_eq!(eval.machine_len(0), 5);
        eval.apply_move(&p, &mut s, 2, 1);
        assert_eq!(eval.machine_len(0), 4);
        assert_eq!(eval.machine_len(1), 1);
    }

    #[test]
    fn ties_in_etc_are_handled() {
        // Jobs with identical ETC on the same machine exercise the
        // (etc, job) tie-break in every code path.
        let etc = EtcMatrix::from_rows(4, 2, vec![5.0; 8]);
        let p = Problem::from_instance(&GridInstance::new("ties", etc));
        let mut s = Schedule::from_assignment(vec![0, 0, 0, 1]);
        let mut eval = EvalState::new(&p, &s);
        eval.debug_validate(&p, &s);
        eval.apply_swap(&p, &mut s, 1, 3);
        eval.debug_validate(&p, &s);
        eval.apply_move(&p, &mut s, 0, 1);
        eval.debug_validate(&p, &s);
        let peek = eval.peek_swap(&p, &s, 2, 3);
        let mut applied = eval.clone();
        applied.apply_swap(&p, &mut s, 2, 3);
        assert_eq!(peek, applied.objectives());
    }
}
