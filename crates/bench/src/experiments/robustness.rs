//! §5.1 robustness study: "the standard deviation of the best makespan
//! from the averaged makespan is very small (roughly 1%)".

use crate::args::Ctx;
use crate::report::{fmt_value, Table};
use crate::runner::{parallel_map, Algo, Summary};

use super::suite_problems;

/// Runs the cMA `ctx.runs` times on every suite instance and reports the
/// spread of the achieved makespans.
#[must_use]
pub fn robustness(ctx: &Ctx) -> Table {
    let problems = suite_problems(ctx);
    let algo = Algo::Cma(ctx.cma_config()).with_stop(ctx.stop);
    let seeds = ctx.seeds();

    let jobs: Vec<(usize, u64)> = (0..problems.len())
        .flat_map(|i| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let flat: Vec<(usize, f64)> = parallel_map(jobs, ctx.threads, |(i, seed)| {
        (i, algo.run(&problems[i], seed).makespan)
    });

    let mut table = Table::new(
        "Robustness of cMA makespan",
        &["Instance", "best", "mean", "std", "std/mean %"],
    );
    for (i, problem) in problems.iter().enumerate() {
        let values: Vec<f64> = flat
            .iter()
            .filter(|(idx, _)| *idx == i)
            .map(|(_, m)| *m)
            .collect();
        let summary = Summary::of(&values);
        table.push_row(vec![
            problem.name().to_owned(),
            fmt_value(summary.best),
            fmt_value(summary.mean),
            fmt_value(summary.std),
            format!("{:.2}", summary.cv_percent()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::super::test_ctx;
    use super::*;

    #[test]
    fn reports_spread_per_instance() {
        let ctx = test_ctx(24, 4, 3, 100);
        let t = robustness(&ctx);
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let best: f64 = row[1].parse().unwrap();
            let mean: f64 = row[2].parse().unwrap();
            let cv: f64 = row[4].parse().unwrap();
            assert!(best <= mean + 1e-9, "best cannot exceed mean");
            assert!(cv >= 0.0);
        }
    }
}
