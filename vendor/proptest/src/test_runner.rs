//! Case-count configuration and per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The case count after applying the `PROPTEST_CASES` env override.
#[must_use]
pub fn effective_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// The deterministic RNG of case `case` of the test hashed to `root`.
#[must_use]
pub fn case_rng(root: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(root ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_wins() {
        // No env set in unit tests: configured value passes through.
        assert_eq!(effective_cases(64), 64);
        assert_eq!(effective_cases(0), 1, "at least one case always runs");
    }

    #[test]
    fn case_rngs_differ() {
        use rand::RngCore;
        let a = case_rng(1, 0).next_u64();
        let b = case_rng(1, 1).next_u64();
        assert_ne!(a, b);
    }
}
