//! Contract tests of the racing-portfolio runtime over the real engine
//! roster: a race is a pure function of (seed, config) — same winner,
//! bit-identical best fitness and stable elimination order at every
//! worker-thread count — and the warm-start hooks behave (elites land,
//! frozen engines spend nothing further, islands stay deterministic).
//! The roster includes the dominance-based engines (MoCell, NSGA-II),
//! whose archive-aware `best_schedule`/`inject` hooks let them exchange
//! elites with the scalarised engines.

use cmags::cma::{run_islands, CmaEngine, IslandConfig};
use cmags::mo::{MoCellConfig, MoCellEngine, Nsga2Engine};
use cmags::prelude::*;

mod common;

fn problem() -> Problem {
    common::braun_problem("u_c_hihi.0", 96, 8)
}

/// Every engine configuration of the racing roster: the five scalarised
/// engines plus both dominance engines.
struct Roster {
    cma: CmaConfig,
    sa: SimulatedAnnealing,
    tabu: TabuSearch,
    ssga: SteadyStateGa,
    struggle: StruggleGa,
    mocell: MoCellConfig,
    nsga2: Nsga2Config,
}

impl Roster {
    fn new() -> Self {
        Self {
            cma: CmaConfig::paper(),
            sa: SimulatedAnnealing::default(),
            tabu: TabuSearch::default(),
            ssga: SteadyStateGa::default(),
            struggle: StruggleGa::default(),
            mocell: MoCellConfig::suggested(),
            nsga2: Nsga2Config::suggested().with_population(20),
        }
    }

    /// The full roster as racing contenders (per-entry RNG streams split
    /// off `seed`).
    fn contenders<'a>(&'a self, p: &'a Problem, seed: u64) -> Vec<Contender<'a>> {
        vec![
            Contender::new(
                "cMA",
                Box::new(CmaEngine::new(&self.cma, p, entry_seed(seed, 0))),
            ),
            Contender::new("SA", Box::new(self.sa.engine(p, entry_seed(seed, 1)))),
            Contender::new("Tabu", Box::new(self.tabu.engine(p, entry_seed(seed, 2)))),
            Contender::new("SS-GA", Box::new(self.ssga.engine(p, entry_seed(seed, 3)))),
            Contender::new(
                "Struggle",
                Box::new(self.struggle.engine(p, entry_seed(seed, 4))),
            ),
            Contender::new(
                "MoCell",
                Box::new(MoCellEngine::new(&self.mocell, p, entry_seed(seed, 5))),
            ),
            Contender::new(
                "NSGA-II",
                Box::new(Nsga2Engine::new(&self.nsga2, p, entry_seed(seed, 6))),
            ),
        ]
    }
}

#[test]
fn race_winner_and_fitness_are_bit_identical_at_1_2_and_8_threads() {
    let p = problem();
    let roster = Roster::new();

    let run = |threads: usize| {
        let contenders = roster.contenders(&p, 7);
        let config =
            PortfolioConfig::successive_halving(contenders.len(), 800).with_threads(threads);
        race(&config, contenders, |o| p.fitness(o))
    };

    let reference = run(1);
    assert!(reference.best_schedule.is_some());
    let names: Vec<&str> = reference.entries.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.contains(&"MoCell") && names.contains(&"NSGA-II"),
        "the dominance engines must be racing"
    );
    for threads in [2, 8] {
        let outcome = run(threads);
        assert_eq!(outcome.winner, reference.winner, "{threads} threads");
        assert_eq!(outcome.winner_name, reference.winner_name);
        assert_eq!(
            outcome.best_score.to_bits(),
            reference.best_score.to_bits(),
            "best fitness must be bit-identical at {threads} threads"
        );
        assert_eq!(outcome.best_schedule, reference.best_schedule);
        assert_eq!(outcome.total_children, reference.total_children);
        assert_eq!(
            outcome.elimination_order(),
            reference.elimination_order(),
            "{threads} threads"
        );
        for (a, b) in outcome.entries.iter().zip(&reference.entries) {
            assert_eq!(a.children, b.children, "{}", a.name);
            assert_eq!(a.injected_accepted, b.injected_accepted, "{}", a.name);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{}", a.name);
        }
    }
}

#[test]
fn elimination_order_is_stable_under_rerun() {
    let p = problem();
    let roster = Roster::new();
    let run = || {
        let contenders = roster.contenders(&p, 11);
        let config = PortfolioConfig::successive_halving(contenders.len(), 700);
        race(&config, contenders, |o| p.fitness(o))
    };
    let a = run();
    let b = run();
    assert_eq!(a.elimination_order(), b.elimination_order());
    assert!(
        !a.elimination_order().is_empty(),
        "halving must freeze someone"
    );
    assert_eq!(a.winner_name, b.winner_name);
    // The race spends exactly what both runs report.
    assert_eq!(a.total_children, b.total_children);
}

#[test]
fn race_beats_every_contenders_initialisation() {
    // The winner's score must improve on the best pure initialisation
    // (a zero-budget race), i.e. racing actually searches.
    let p = problem();
    let roster = Roster::new();
    let at_budget = |budget: u64| {
        let contenders = roster.contenders(&p, 3);
        let config = PortfolioConfig::successive_halving(contenders.len(), budget);
        race(&config, contenders, |o| p.fitness(o)).best_score
    };
    assert!(at_budget(800) < at_budget(14));
}

#[test]
fn frozen_contenders_spend_no_further_budget() {
    let p = problem();
    let roster = Roster::new();
    let contenders = roster.contenders(&p, 5);
    let config = PortfolioConfig::successive_halving(contenders.len(), 700);
    let outcome = race(&config, contenders, |o| p.fitness(o));
    let first_barrier = outcome
        .entries
        .iter()
        .filter_map(|e| e.eliminated_in)
        .min()
        .expect("halving froze someone");
    let early_frozen = outcome
        .entries
        .iter()
        .filter(|e| e.eliminated_in == Some(first_barrier))
        .map(|e| e.children)
        .max()
        .expect("someone froze at the first barrier");
    let winner = &outcome.entries[outcome.winner];
    assert!(
        winner.children > early_frozen,
        "the winner ({}) must outspend engines frozen at the first barrier ({} vs {early_frozen})",
        winner.name,
        winner.children
    );
}

#[test]
fn dominance_engines_produce_realizable_scores() {
    // A dominance engine's uniform score must equal the active fitness
    // of a schedule it can actually surrender — not the ideal point.
    let p = problem();
    let roster = Roster::new();
    let contenders = roster.contenders(&p, 13);
    let config = PortfolioConfig::successive_halving(contenders.len(), 500);
    let outcome = race(&config, contenders, |o| p.fitness(o));
    let winner = &outcome.entries[outcome.winner];
    let schedule = outcome
        .best_schedule
        .as_ref()
        .expect("every roster engine surrenders a schedule");
    assert_eq!(
        p.fitness(evaluate(&p, schedule)).to_bits(),
        winner.score.to_bits(),
        "winner {}: score must re-evaluate from its schedule",
        winner.name
    );
}

#[test]
fn diversity_telemetry_flows_through_the_race() {
    // Population engines report per-iteration diversity uniformly
    // through the Observer hook; trajectory engines (SA/Tabu) simply
    // contribute no points.
    let p = problem();
    let roster = Roster::new();
    let contenders = roster.contenders(&p, 9);
    let config = PortfolioConfig::successive_halving(contenders.len(), 560).with_diversity();
    let outcome = race(&config, contenders, |o| p.fitness(o));
    let by_name = |name: &str| {
        outcome
            .entries
            .iter()
            .find(|e| e.name == name)
            .expect("entry present")
    };
    assert!(
        !by_name("cMA").diversity.is_empty(),
        "the cMA must report diversity"
    );
    assert!(by_name("SA").diversity.is_empty());
    assert!(by_name("Tabu").diversity.is_empty());
    for entry in &outcome.entries {
        let iters: Vec<u64> = entry.diversity.iter().map(|d| d.iteration).collect();
        let mut sorted = iters.clone();
        sorted.dedup();
        assert_eq!(
            iters, sorted,
            "{}: no duplicate boundary samples",
            entry.name
        );
    }
}

#[test]
fn islands_on_the_portfolio_runtime_are_deterministic() {
    let p = problem();
    let config = IslandConfig {
        island: CmaConfig::paper().with_stop(StopCondition::iterations(4)),
        islands: 4,
        migration_interval: 2,
    };
    let a = run_islands(&config, &p, 21);
    let b = run_islands(&config, &p, 21);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.fitness.to_bits(), b.fitness.to_bits());
    assert_eq!(a.island_fitness, b.island_fitness);
    assert_eq!(a.migrants_accepted, b.migrants_accepted);
    assert_eq!(
        cmags::core::evaluate(&p, &a.schedule),
        a.objectives,
        "reported objectives must re-evaluate exactly"
    );
}
