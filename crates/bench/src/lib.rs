//! # cmags-bench — experiment harness
//!
//! Regenerates **every table and figure** of the reproduced paper
//! (`DESIGN.md` §4 maps each experiment id to its binary):
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `fig2` | Fig. 2 — local search methods (LM/SLM/LMCTS) |
//! | `fig3` | Fig. 3 — neighbourhood patterns |
//! | `fig4` | Fig. 4 — N-tournament selection |
//! | `fig5` | Fig. 5 — cell update orders |
//! | `table1` | Table 1 — tuned configuration dump |
//! | `table2` | Table 2 — makespan, cMA vs Braun et al. GA |
//! | `table3` | Table 3 — makespan, cMA vs steady-state & Struggle GA |
//! | `table4` | Table 4 — flowtime, cMA vs LJFR-SJFR |
//! | `table5` | Table 5 — flowtime, cMA vs Struggle GA |
//! | `robustness` | §5.1 — stddev of makespan over repeated runs |
//! | `ablation` | `DESIGN.md` ABL-* — component ablations |
//! | `dynamic` | §1/§6 claim — dynamic scheduling via `cmags-gridsim` |
//! | `full_eval` | runs everything above in sequence |
//!
//! Every binary accepts `--paper` (full 90 s × 10-run protocol),
//! `--budget-ms`, `--runs`, `--seed`, `--threads`, `--jobs`,
//! `--machines` and `--out <dir>`; results are printed as Markdown and
//! written as CSV under `results/`.
//!
//! The absolute numbers of the original tables cannot be matched — the
//! benchmark instance *files* are not redistributable, so same-class
//! instances are regenerated (`DESIGN.md` §3) — but the comparisons
//! (who wins, by what order of magnitude, where the consistency classes
//! flip the ranking) are the reproduction target, and the paper's
//! reference values ship in [`mod@reference`] for side-by-side display.

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod reference;
pub mod report;
pub mod runner;
pub mod stats;
