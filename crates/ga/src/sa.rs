//! Simulated Annealing baseline.
//!
//! Braun et al. (JPDC 2001) — the study that defined the benchmark
//! suite this paper evaluates on — compared eleven mappers including a
//! Simulated Annealing. This module provides that baseline under the
//! workspace's bi-objective fitness so the comparison tables can place
//! the cMA against the full classic line-up.
//!
//! The chain follows Braun's description adapted to the scalarised
//! fitness: start from a heuristic seed, propose single-job *move*
//! mutations, accept improvements always and deteriorations with the
//! Metropolis probability `exp(-Δ/T)`, cool geometrically every
//! [`SimulatedAnnealing::moves_per_temperature`] proposals. Braun's SA
//! sets the initial temperature to the initial makespan, which is far
//! hotter than the deltas of single-job moves and degenerates into a
//! random walk on short budgets; by default this implementation
//! calibrates T₀ to the **mean deterioration of a warm-up sample of
//! moves** (so a typical worsening move starts with acceptance
//! `exp(-1) ≈ 37 %`), which is scale-free across instance classes.
//! Braun's rule remains available through
//! [`SimulatedAnnealing::initial_temperature`].

use std::time::Instant;

use cmags_cma::{Individual, StopCondition};
use cmags_core::engine::Metaheuristic;
use cmags_core::{JobId, MachineId, Objectives, Problem, Schedule, ScoreBuf};
use cmags_heuristics::constructive::ConstructiveKind;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::common::{run_to_outcome, BaselineEngine, GaOutcome};

/// Configuration of the Simulated Annealing baseline.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Heuristic building the starting schedule.
    pub seeding: ConstructiveKind,
    /// Initial temperature; `None` = calibrated to the mean
    /// deterioration of a warm-up sample of moves (warm-up peeks do not
    /// count toward the children budget).
    pub initial_temperature: Option<f64>,
    /// Geometric cooling factor applied every
    /// [`SimulatedAnnealing::moves_per_temperature`] proposals.
    pub cooling: f64,
    /// Proposals evaluated between cooling steps.
    pub moves_per_temperature: usize,
    /// Floor below which the chain behaves greedily (relative to the
    /// initial temperature).
    pub min_temperature_ratio: f64,
    /// Stopping condition; each proposal counts as one child.
    pub stop: StopCondition,
}

impl SimulatedAnnealing {
    /// Replaces the stopping condition.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Replaces the seeding heuristic.
    #[must_use]
    pub fn with_seeding(mut self, seeding: ConstructiveKind) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs the annealing chain through the shared engine runtime.
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid configurations (cooling outside
    /// `(0, 1)`, zero chain length, unbounded stop).
    #[must_use]
    pub fn run(&self, problem: &Problem, seed: u64) -> GaOutcome {
        // lint:allow(no-wall-clock-in-sim): legit wall-clock budget anchor — the paper-protocol time limit in StopCondition is opt-in and informational; deterministic runs use exact children/iteration budgets and no tick-domain value derives from this read.
        let start = Instant::now();
        let engine = self.engine(problem, seed);
        run_to_outcome(self.stop, start, engine, seed)
    }

    /// Builds the step-driven engine state (one proposal per step).
    ///
    /// # Panics
    ///
    /// Panics on cooling outside `(0, 1)` or a zero chain length.
    #[must_use]
    pub fn engine<'a>(&'a self, problem: &'a Problem, seed: u64) -> SimulatedAnnealingEngine<'a> {
        SimulatedAnnealingEngine::new(self, problem, seed)
    }
}

/// [`SimulatedAnnealing`] as a step-driven [`Metaheuristic`]: one
/// Metropolis proposal per step; a "generation" is one temperature step.
pub struct SimulatedAnnealingEngine<'a> {
    config: &'a SimulatedAnnealing,
    problem: &'a Problem,
    rng: SmallRng,
    current: Individual,
    best: Individual,
    temperature: f64,
    floor: f64,
    since_cooling: usize,
    temperature_steps: u64,
    children: u64,
}

impl<'a> SimulatedAnnealingEngine<'a> {
    fn new(config: &'a SimulatedAnnealing, problem: &'a Problem, seed: u64) -> Self {
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must lie in (0, 1)"
        );
        assert!(
            config.moves_per_temperature > 0,
            "chain length must be positive"
        );

        let mut rng = SmallRng::seed_from_u64(seed);
        let current_schedule = config.seeding.build_seeded(problem, &mut rng);
        let current = Individual::new(problem, current_schedule);
        // Warm-up calibration peeks do not count toward the children
        // budget: they happen before the runner takes over.
        let t0 = config
            .initial_temperature
            .unwrap_or_else(|| calibrate_temperature(problem, &current, &mut rng))
            .max(f64::MIN_POSITIVE);
        Self {
            config,
            problem,
            rng,
            best: current.clone(),
            current,
            temperature: t0,
            floor: t0 * config.min_temperature_ratio,
            since_cooling: 0,
            temperature_steps: 0,
            children: 0,
        }
    }
}

impl Metaheuristic for SimulatedAnnealingEngine<'_> {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn step(&mut self) {
        if let Some((job, target)) = propose_move(self.problem, &self.current, &mut self.rng) {
            let peeked =
                self.current
                    .eval
                    .peek_move(self.problem, &self.current.schedule, job, target);
            let candidate_fitness = self.problem.fitness(peeked);
            let delta = candidate_fitness - self.current.fitness;
            if metropolis_accept(delta, self.temperature, &mut self.rng) {
                self.current
                    .eval
                    .apply_move(self.problem, &mut self.current.schedule, job, target);
                self.current.fitness = candidate_fitness;
                if self.current.fitness < self.best.fitness {
                    self.best = self.current.clone();
                }
            }
        }
        self.children += 1;

        self.since_cooling += 1;
        if self.since_cooling == self.config.moves_per_temperature {
            self.since_cooling = 0;
            self.temperature = (self.temperature * self.config.cooling).max(self.floor);
            self.temperature_steps += 1;
        }
    }

    fn iterations(&self) -> u64 {
        self.temperature_steps
    }

    fn children(&self) -> u64 {
        self.children
    }

    fn best_fitness(&self) -> f64 {
        self.best.fitness
    }

    fn best_objectives(&self) -> Objectives {
        self.best.objectives()
    }

    fn best_schedule(&self) -> Option<&Schedule> {
        Some(&self.best.schedule)
    }

    /// Elite immigration: restarts the trajectory from the offer when
    /// it strictly beats the current point (the best-so-far follows).
    fn inject(&mut self, schedule: &Schedule) -> bool {
        crate::common::inject_trajectory(self.problem, &mut self.current, &mut self.best, schedule)
    }
}

impl BaselineEngine for SimulatedAnnealingEngine<'_> {
    fn into_best(self) -> Individual {
        self.best
    }
}

impl Default for SimulatedAnnealing {
    /// LJFR-SJFR seed (matching the cMA), calibrated initial
    /// temperature, cooling 0.95 every 64 proposals, temperature floor
    /// at 10⁻⁹ of the start, 90 s budget.
    fn default() -> Self {
        Self {
            seeding: ConstructiveKind::LjfrSjfr,
            initial_temperature: None,
            cooling: 0.95,
            moves_per_temperature: 64,
            min_temperature_ratio: 1e-9,
            stop: StopCondition::paper_time(),
        }
    }
}

/// Mean deterioration of a warm-up sample of 32 random moves — the
/// temperature at which a typical worsening proposal is accepted with
/// probability `exp(-1)`. The sample is drawn first and scored in one
/// batched [`cmags_core::EvalState::score_moves`] call (bit-identical to
/// per-proposal peeks). Falls back to a small fraction of the seed
/// fitness when no sampled move worsens (degenerate instances).
fn calibrate_temperature(problem: &Problem, current: &Individual, rng: &mut SmallRng) -> f64 {
    let mut proposals: Vec<(JobId, MachineId)> = Vec::with_capacity(32);
    for _ in 0..32 {
        if let Some(proposal) = propose_move(problem, current, rng) {
            proposals.push(proposal);
        }
    }
    let mut scores = ScoreBuf::new();
    current
        .eval
        .score_moves(problem, &current.schedule, &proposals, &mut scores);
    let mut total = 0.0;
    let mut worsening = 0usize;
    for i in 0..scores.len() {
        let delta = problem.fitness(scores.objectives(i)) - current.fitness;
        if delta > 0.0 {
            total += delta;
            worsening += 1;
        }
    }
    if worsening > 0 {
        total / worsening as f64
    } else {
        current.fitness * 1e-3
    }
}

/// Draws a random `(job, target ≠ current)` move; `None` on one machine.
fn propose_move(
    problem: &Problem,
    current: &Individual,
    rng: &mut dyn RngCore,
) -> Option<(JobId, MachineId)> {
    let nb_machines = problem.nb_machines() as MachineId;
    if nb_machines < 2 {
        return None;
    }
    let job = rng.gen_range(0..problem.nb_jobs() as JobId);
    let from = current.schedule.machine_of(job);
    let mut target = rng.gen_range(0..nb_machines - 1);
    if target >= from {
        target += 1;
    }
    Some((job, target))
}

/// The Metropolis criterion: improvements always pass; deteriorations
/// pass with probability `exp(-Δ/T)`.
fn metropolis_accept(delta: f64, temperature: f64, rng: &mut dyn RngCore) -> bool {
    if delta <= 0.0 {
        return true;
    }
    if temperature <= 0.0 {
        return false;
    }
    rng.gen::<f64>() < (-delta / temperature).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_core::evaluate;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_c_hihi.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(128, 8), 0))
    }

    fn quick() -> SimulatedAnnealing {
        SimulatedAnnealing::default().with_stop(StopCondition::children(2_000))
    }

    #[test]
    fn respects_children_budget_and_counts_temperature_steps() {
        let outcome = quick().run(&problem(), 1);
        assert_eq!(outcome.children, 2_000);
        assert_eq!(outcome.generations, 2_000 / 64);
    }

    #[test]
    fn improves_over_its_seed() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(5);
        let seed_schedule = ConstructiveKind::LjfrSjfr.build_seeded(&p, &mut rng);
        let seed_fitness = p.fitness(evaluate(&p, &seed_schedule));
        let outcome = quick().run(&p, 5);
        assert!(
            outcome.fitness < seed_fitness,
            "SA ({}) must improve on LJFR-SJFR ({seed_fitness})",
            outcome.fitness
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = quick().run(&p, 9);
        let b = quick().run(&p, 9);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.fitness, b.fitness);
    }

    #[test]
    fn best_matches_reevaluation() {
        let p = problem();
        let outcome = quick().run(&p, 3);
        assert_eq!(outcome.objectives, evaluate(&p, &outcome.schedule));
    }

    #[test]
    fn metropolis_always_accepts_improvements() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..64 {
            assert!(metropolis_accept(-1.0, 1e-12, &mut rng));
            assert!(metropolis_accept(0.0, 0.0, &mut rng));
        }
    }

    #[test]
    fn metropolis_rejects_at_zero_temperature() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..64 {
            assert!(!metropolis_accept(1.0, 0.0, &mut rng));
        }
    }

    #[test]
    fn metropolis_acceptance_rate_tracks_temperature() {
        let mut rng = SmallRng::seed_from_u64(7);
        let rate = |delta: f64, t: f64, rng: &mut SmallRng| {
            (0..4_000)
                .filter(|_| metropolis_accept(delta, t, rng))
                .count() as f64
                / 4_000.0
        };
        let hot = rate(1.0, 10.0, &mut rng);
        let cold = rate(1.0, 0.5, &mut rng);
        assert!(hot > 0.85, "exp(-0.1) ≈ 0.90, got {hot}");
        assert!(cold < 0.25, "exp(-2) ≈ 0.14, got {cold}");
        assert!(hot > cold);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn invalid_cooling_rejected() {
        let mut config = quick();
        config.cooling = 1.5;
        let _ = config.run(&problem(), 0);
    }

    #[test]
    fn single_machine_instance_terminates() {
        let etc = cmags_etc::EtcMatrix::from_rows(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let inst = cmags_etc::GridInstance::new("one", etc);
        let p = Problem::from_instance(&inst);
        let outcome = quick().with_stop(StopCondition::children(50)).run(&p, 0);
        assert_eq!(outcome.children, 50);
        assert_eq!(outcome.objectives.makespan, 10.0);
    }
}
