//! The discrete-event simulation loop.

use std::collections::BTreeMap;
use std::time::Instant;

use cmags_etc::{EtcMatrix, GridInstance};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::{Event, EventQueue};
use crate::machine::MachinePool;
use crate::metrics::{JobRecord, SimReport};
use crate::scenario::{ChurnModel, ScenarioFamily};
use crate::scheduler::BatchScheduler;
use crate::workload::{exp_gap, ArrivalGen, ArrivalProcess, JobSpec, World};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Heterogeneity/consistency world.
    pub world: World,
    /// Job arrival process.
    pub arrivals: ArrivalProcess,
    /// Stop submitting jobs after this simulated time; the run then
    /// drains until every submitted job completes.
    pub arrival_horizon: f64,
    /// Interval between scheduler activations (the paper's "since the
    /// last activation" window).
    pub activation_interval: f64,
    /// Machines present at t = 0.
    pub initial_machines: usize,
    /// Machine churn model. Departures never drop the pool below two
    /// machines.
    pub churn: ChurnModel,
    /// Multiplicative execution-time noise: realized time is
    /// `ETC · U(1-ε, 1+ε)`. Zero keeps execution exactly at ETC.
    pub execution_noise: f64,
    /// Safety valve on total processed events.
    pub max_events: u64,
}

impl SimConfig {
    /// A small, fast scenario for tests and examples: consistent hihi
    /// world, 8 machines, ~60 jobs, no churn, no noise. Identical to
    /// [`ScenarioFamily::Calm`].
    #[must_use]
    pub fn small() -> Self {
        Self::from_family(ScenarioFamily::Calm)
    }

    /// A churny scenario: machines join and leave during the run.
    /// Identical to [`ScenarioFamily::Churny`].
    #[must_use]
    pub fn churny() -> Self {
        Self::from_family(ScenarioFamily::Churny)
    }

    /// Builds the named scenario family's configuration.
    #[must_use]
    pub fn from_family(family: ScenarioFamily) -> Self {
        family.config()
    }
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy)]
struct JobState {
    spec: JobSpec,
    started: Option<f64>,
    resubmissions: u32,
}

/// The simulator. Owns all mutable state of one run.
pub struct Simulation {
    config: SimConfig,
    rng: SmallRng,
    arrivals: ArrivalGen,
    events: EventQueue,
    pool: MachinePool,
    /// Jobs waiting for the next scheduler activation, in arrival order.
    pending: Vec<u64>,
    /// All job states, keyed by id.
    jobs: BTreeMap<u64, JobState>,
    now: f64,
    next_job_id: u64,
    report: SimReport,
    /// Accumulates (alive machines × elapsed) for utilisation.
    last_avail_update: f64,
}

impl Simulation {
    /// Prepares a simulation with the given seed.
    ///
    /// # Panics
    ///
    /// Panics on non-positive horizon/interval, fewer than two initial
    /// machines, or invalid arrival/churn parameters.
    #[must_use]
    pub fn new(config: SimConfig, seed: u64) -> Self {
        assert!(config.arrival_horizon > 0.0, "horizon must be positive");
        assert!(
            config.activation_interval > 0.0,
            "activation interval must be positive"
        );
        assert!(
            config.initial_machines >= 2,
            "need at least two initial machines"
        );
        assert!(
            (0.0..1.0).contains(&config.execution_noise),
            "noise must be in [0, 1)"
        );
        config.churn.validate();
        let arrivals = config.arrivals.generator();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pool = MachinePool::new();
        for _ in 0..config.initial_machines {
            let slowness = config.world.draw_slowness(&mut rng);
            pool.join(slowness, 0.0);
        }
        Self {
            config,
            rng,
            arrivals,
            events: EventQueue::new(),
            pool,
            pending: Vec::new(),
            jobs: BTreeMap::new(),
            now: 0.0,
            next_job_id: 0,
            report: SimReport::default(),
            last_avail_update: 0.0,
        }
    }

    /// Runs the simulation to completion under `scheduler` and returns
    /// the report.
    pub fn run(mut self, scheduler: &mut dyn BatchScheduler) -> SimReport {
        self.report.scheduler = scheduler.name();
        self.schedule_initial_events();

        let mut processed = 0u64;
        while let Some((time, event)) = self.events.pop() {
            processed += 1;
            if processed > self.config.max_events {
                panic!(
                    "simulation exceeded max_events = {}",
                    self.config.max_events
                );
            }
            self.advance_clock(time);
            match event {
                Event::JobArrival { job } => self.on_arrival(job),
                Event::SchedulerActivation => self.on_activation(scheduler),
                Event::JobFinish { machine, job } => self.on_finish(machine, job),
                Event::MachineJoin { .. } => self.on_join(),
                Event::MachineLeave { machine } => self.on_leave(machine),
                Event::MassDeparture => self.on_mass_departure(),
            }
        }
        // Final availability update and sanity.
        self.advance_clock(self.now);
        debug_assert_eq!(self.report.jobs_completed, self.report.jobs_submitted);
        self.report
    }

    // --- event generation -------------------------------------------------

    fn schedule_initial_events(&mut self) {
        // First arrival.
        let gap = self.arrivals.next_gap(0.0, &mut self.rng);
        if gap <= self.config.arrival_horizon {
            self.events.push(
                gap,
                Event::JobArrival {
                    job: self.next_job_id,
                },
            );
        }
        // First activation.
        self.events
            .push(self.config.activation_interval, Event::SchedulerActivation);
        // Churn processes.
        let churn = self.config.churn;
        if churn.join_rate() > 0.0 {
            let gap = exp_gap(&mut self.rng, churn.join_rate());
            if gap <= self.config.arrival_horizon {
                self.events.push(gap, Event::MachineJoin { machine: 0 });
            }
        }
        if churn.leave_rate() > 0.0 {
            let gap = exp_gap(&mut self.rng, churn.leave_rate());
            if gap <= self.config.arrival_horizon {
                self.events.push(gap, Event::MachineLeave { machine: 0 });
            }
        }
        if let Some((shock_rate, _)) = churn.shock() {
            let gap = exp_gap(&mut self.rng, shock_rate);
            if gap <= self.config.arrival_horizon {
                self.events.push(gap, Event::MassDeparture);
            }
        }
    }

    fn advance_clock(&mut self, time: f64) {
        debug_assert!(time + 1e-9 >= self.now, "time went backwards");
        let elapsed = (time - self.last_avail_update).max(0.0);
        self.report.available_machine_seconds += elapsed * self.pool.len() as f64;
        self.last_avail_update = time;
        self.now = self.now.max(time);
    }

    // --- event handlers ----------------------------------------------------

    fn on_arrival(&mut self, job: u64) {
        debug_assert_eq!(job, self.next_job_id);
        let spec = JobSpec {
            id: job,
            arrival: self.now,
            baseline: self.config.world.draw_baseline(&mut self.rng),
        };
        self.report
            .fold_event(&[1, job, self.now.to_bits(), spec.baseline.to_bits()]);
        self.jobs.insert(
            job,
            JobState {
                spec,
                started: None,
                resubmissions: 0,
            },
        );
        self.pending.push(job);
        self.report.jobs_submitted += 1;
        self.next_job_id += 1;

        // Next arrival, if still within the horizon.
        let gap = self.arrivals.next_gap(self.now, &mut self.rng);
        let t = self.now + gap;
        if t <= self.config.arrival_horizon {
            self.events.push(
                t,
                Event::JobArrival {
                    job: self.next_job_id,
                },
            );
        }
    }

    fn on_activation(&mut self, scheduler: &mut dyn BatchScheduler) {
        if !self.pending.is_empty() && !self.pool.is_empty() {
            self.dispatch_pending(scheduler);
        }
        // Re-arm while work can still appear or remains in flight. The
        // completed-vs-submitted gap covers every unfinished job —
        // pending, queued, running or killed-awaiting-resubmission — so
        // the check is O(1) (the seed scanned all jobs against the
        // pending list here, O(jobs × pending) per activation).
        let more_arrivals = self.now < self.config.arrival_horizon;
        if more_arrivals || self.report.jobs_completed < self.report.jobs_submitted {
            self.events.push(
                self.now + self.config.activation_interval,
                Event::SchedulerActivation,
            );
        }
    }

    /// Snapshot pending jobs + alive machines into a `GridInstance`, ask
    /// the scheduler, dispatch assignments in SPT order per machine.
    fn dispatch_pending(&mut self, scheduler: &mut dyn BatchScheduler) {
        let machine_ids = self.pool.ids();
        let job_ids: Vec<u64> = self.pending.drain(..).collect();

        // ETC snapshot: rows in pending order, columns in machine-id order.
        let world = self.config.world;
        let jobs = &self.jobs;
        let pool = &self.pool;
        let etc = EtcMatrix::from_fn(job_ids.len(), machine_ids.len(), |r, c| {
            let spec = &jobs[&job_ids[r]].spec;
            let machine = pool.get(machine_ids[c]).expect("alive machine");
            world.etc(spec, &machine.spec)
        });
        let ready: Vec<f64> = machine_ids
            .iter()
            .map(|&id| {
                let machine = self.pool.get(id).expect("alive machine");
                let ready_abs =
                    machine.ready_time(self.now, |job| world.etc(&jobs[&job].spec, &machine.spec));
                // Ready times are relative to "now" for the snapshot.
                (ready_abs - self.now).max(0.0)
            })
            .collect();
        let instance =
            GridInstance::with_ready_times(format!("activation@{:.0}", self.now), etc, ready);

        let wall = Instant::now();
        let schedule = scheduler.schedule(&instance, self.report.activations);
        self.report.scheduler_wall_s += wall.elapsed().as_secs_f64();
        self.report.activations += 1;
        assert_eq!(
            schedule.nb_jobs(),
            job_ids.len(),
            "scheduler must plan every job"
        );

        // Group per machine, enqueue in SPT order (our evaluation
        // convention), then kick idle machines.
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); machine_ids.len()];
        for (row, &job) in job_ids.iter().enumerate() {
            let col = schedule.machine_of(row as u32) as usize;
            assert!(
                col < machine_ids.len(),
                "scheduler assigned an unknown machine"
            );
            buckets[col].push(job);
        }
        let mut dispatches: Vec<(u64, Vec<u64>)> = Vec::with_capacity(machine_ids.len());
        for (col, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let machine_id = machine_ids[col];
            let machine_spec = self.pool.get(machine_id).expect("alive machine").spec;
            bucket.sort_by(|&a, &b| {
                world
                    .etc(&jobs[&a].spec, &machine_spec)
                    .total_cmp(&world.etc(&jobs[&b].spec, &machine_spec))
                    .then(a.cmp(&b))
            });
            dispatches.push((machine_id, bucket));
        }
        for (machine_id, bucket) in dispatches {
            let machine = self.pool.get_mut(machine_id).expect("alive machine");
            machine.queue.extend(bucket);
            self.kick(machine_id);
        }
    }

    /// Starts the next queued job on `machine` if it is idle.
    fn kick(&mut self, machine_id: u64) {
        // No-op kicks must not touch the RNG: the noise draw happens
        // only once a job actually starts, so the noise stream is a
        // function of the start sequence alone, not of incidental kick
        // ordering (dead machine / busy machine / empty queue).
        let Some(machine) = self.pool.get(machine_id) else {
            return;
        };
        if machine.running.is_some() || machine.queue.is_empty() {
            return;
        }
        let noise = self.draw_noise();
        let world = self.config.world;
        let now = self.now;
        let machine = self
            .pool
            .get_mut(machine_id)
            .expect("machine alive: checked above");
        let job = machine.queue.remove(0);
        let spec = self.jobs[&job].spec;
        let duration = world.etc(&spec, &machine.spec) * noise;
        let finish = now + duration;
        machine.running = Some((job, finish));
        machine.busy_time += duration;
        self.report.busy_machine_seconds += duration;
        if let Some(state) = self.jobs.get_mut(&job) {
            state.started.get_or_insert(now);
        }
        self.events.push(
            finish,
            Event::JobFinish {
                machine: machine_id,
                job,
            },
        );
    }

    fn draw_noise(&mut self) -> f64 {
        let eps = self.config.execution_noise;
        if eps == 0.0 {
            1.0
        } else {
            self.rng.gen_range(1.0 - eps..=1.0 + eps)
        }
    }

    fn on_finish(&mut self, machine_id: u64, job: u64) {
        // The machine may have left before the finish event fired; the
        // kill path already handled the job then.
        let Some(machine) = self.pool.get_mut(machine_id) else {
            return;
        };
        match machine.running {
            Some((running, _)) if running == job => machine.running = None,
            _ => return, // stale event
        }
        let state = self.jobs[&job];
        self.report.record_completion(&JobRecord {
            job,
            arrival: state.spec.arrival,
            started: state.started.expect("finished job must have started"),
            finished: self.now,
            resubmissions: state.resubmissions,
        });
        self.kick(machine_id);
    }

    fn on_join(&mut self) {
        let slowness = self.config.world.draw_slowness(&mut self.rng);
        self.report
            .fold_event(&[2, self.now.to_bits(), slowness.to_bits()]);
        self.pool.join(slowness, self.now);
        // Next join.
        let gap = exp_gap(&mut self.rng, self.config.churn.join_rate());
        let t = self.now + gap;
        if t <= self.config.arrival_horizon {
            self.events.push(t, Event::MachineJoin { machine: 0 });
        }
    }

    /// Removes one uniformly chosen machine, resubmitting its killed
    /// and queued work, unless the pool is at its two-machine floor.
    fn kill_random_machine(&mut self) {
        // Keep at least two machines so the system stays schedulable.
        if self.pool.len() <= 2 {
            return;
        }
        // Deterministic victim: uniform index over alive ids.
        let ids = self.pool.ids();
        let victim = ids[self.rng.gen_range(0..ids.len())];
        self.report.fold_event(&[3, self.now.to_bits(), victim]);
        if let Some(dead) = self.pool.leave(victim) {
            // Kill the running job (non-preemptive loss) and resubmit
            // it and the queue.
            let mut orphans = dead.queue;
            if let Some((job, _)) = dead.running {
                orphans.insert(0, job);
            }
            for job in orphans {
                if let Some(state) = self.jobs.get_mut(&job) {
                    state.resubmissions += 1;
                    // A killed running job restarts from scratch.
                    state.started = None;
                }
                self.pending.push(job);
            }
        }
    }

    fn on_leave(&mut self, _hint: u64) {
        self.kill_random_machine();
        // Next departure.
        let gap = exp_gap(&mut self.rng, self.config.churn.leave_rate());
        let t = self.now + gap;
        if t <= self.config.arrival_horizon {
            self.events.push(t, Event::MachineLeave { machine: 0 });
        }
    }

    fn on_mass_departure(&mut self) {
        let (shock_rate, fraction) = self
            .config
            .churn
            .shock()
            .expect("mass departure only fires under a correlated model");
        // Remove ⌈fraction · alive⌉ machines at this instant; the
        // two-machine floor still applies per victim.
        let victims = ((self.pool.len() as f64 * fraction).ceil() as usize).max(1);
        self.report
            .fold_event(&[4, self.now.to_bits(), victims as u64]);
        for _ in 0..victims {
            self.kill_random_machine();
        }
        // Next shock.
        let gap = exp_gap(&mut self.rng, shock_rate);
        let t = self.now + gap;
        if t <= self.config.arrival_horizon {
            self.events.push(t, Event::MassDeparture);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{CmaScheduler, HeuristicScheduler, RandomScheduler};
    use cmags_cma::StopCondition;
    use cmags_heuristics::constructive::ConstructiveKind;

    #[test]
    fn completes_every_job_without_churn() {
        let mut scheduler = HeuristicScheduler::new(ConstructiveKind::Mct);
        let report = Simulation::new(SimConfig::small(), 1).run(&mut scheduler);
        assert!(report.jobs_submitted > 10, "workload should be non-trivial");
        assert_eq!(report.jobs_completed, report.jobs_submitted);
        assert_eq!(report.resubmissions, 0);
        assert!(report.realized_makespan > 0.0);
        assert!(report.utilization() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = HeuristicScheduler::new(ConstructiveKind::MinMin);
            Simulation::new(SimConfig::small(), seed).run(&mut s)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.jobs_submitted, b.jobs_submitted);
        assert_eq!(a.realized_makespan, b.realized_makespan);
        assert_eq!(a.flowtime, b.flowtime);
        let c = run(8);
        assert_ne!(a.flowtime, c.flowtime);
    }

    #[test]
    fn survives_churn_and_resubmits() {
        let mut scheduler = HeuristicScheduler::new(ConstructiveKind::Mct);
        let report = Simulation::new(SimConfig::churny(), 3).run(&mut scheduler);
        assert_eq!(report.jobs_completed, report.jobs_submitted);
        // Churn at these rates essentially always kills something.
        assert!(
            report.resubmissions > 0,
            "expected at least one resubmission"
        );
    }

    #[test]
    fn better_scheduler_means_better_flowtime() {
        let config = SimConfig::small();
        let mut minmin = HeuristicScheduler::new(ConstructiveKind::MinMin);
        let mut random = RandomScheduler;
        let good = Simulation::new(config.clone(), 5).run(&mut minmin);
        let bad = Simulation::new(config, 5).run(&mut random);
        assert!(
            good.mean_response() < bad.mean_response(),
            "Min-Min ({}) must beat Random ({})",
            good.mean_response(),
            bad.mean_response()
        );
    }

    #[test]
    fn cma_scheduler_runs_the_whole_sim() {
        let mut cma = CmaScheduler::new(StopCondition::children(150));
        let report = Simulation::new(SimConfig::small(), 9).run(&mut cma);
        assert_eq!(report.jobs_completed, report.jobs_submitted);
        assert!(report.activations > 0);
        assert!(report.scheduler_wall_s > 0.0);
    }

    #[test]
    fn execution_noise_changes_realized_times() {
        let mut config = SimConfig::small();
        config.execution_noise = 0.2;
        let mut s1 = HeuristicScheduler::new(ConstructiveKind::MinMin);
        let noisy = Simulation::new(config, 11).run(&mut s1);
        let mut s2 = HeuristicScheduler::new(ConstructiveKind::MinMin);
        let clean = Simulation::new(SimConfig::small(), 11).run(&mut s2);
        assert_ne!(noisy.realized_makespan, clean.realized_makespan);
        assert_eq!(noisy.jobs_completed, noisy.jobs_submitted);
    }

    #[test]
    fn noop_kick_does_not_consume_rng() {
        let mut config = SimConfig::small();
        config.execution_noise = 0.2;
        let mut sim = Simulation::new(config, 1);
        let reference = sim.rng.clone();
        // Dead machine, idle machine with an empty queue, and a busy
        // machine: all three kicks are no-ops and must leave the noise
        // stream untouched (the seed drew noise before the guards, so
        // the stream depended on incidental kick ordering).
        sim.kick(999);
        sim.kick(0);
        sim.pool.get_mut(1).expect("machine 1 alive").running = Some((42, 10.0));
        sim.kick(1);
        let mut after = sim.rng.clone();
        let mut before = reference;
        for _ in 0..4 {
            assert_eq!(
                after.gen_range(0.0f64..1.0).to_bits(),
                before.gen_range(0.0f64..1.0).to_bits(),
                "a no-op kick must not consume an RNG draw"
            );
        }
    }

    #[test]
    fn kick_fix_pins_the_noise_stream() {
        // Pinned against the vendored RNG: a stray noise draw on any
        // no-op kick (the pre-fix behaviour) shifts the stream and
        // changes these bits. Update the constant only for a deliberate
        // change to the simulator's draw ordering.
        let mut config = SimConfig::small();
        config.execution_noise = 0.2;
        let mut s = HeuristicScheduler::new(ConstructiveKind::Mct);
        let report = Simulation::new(config, 11).run(&mut s);
        assert_eq!(report.realized_makespan.to_bits(), 0x4133_cd1b_761d_9d5b);
    }

    #[test]
    fn every_family_is_deterministic_and_completes() {
        for family in ScenarioFamily::ALL {
            let run = |seed| {
                let mut s = HeuristicScheduler::new(ConstructiveKind::Mct);
                Simulation::new(SimConfig::from_family(family), seed).run(&mut s)
            };
            let a = run(5);
            let b = run(5);
            assert!(a.jobs_submitted > 10, "{family}: workload too small");
            assert_eq!(a.jobs_completed, a.jobs_submitted, "{family}: lost jobs");
            assert_eq!(a.jobs_submitted, b.jobs_submitted, "{family}");
            assert_eq!(
                a.realized_makespan.to_bits(),
                b.realized_makespan.to_bits(),
                "{family}: makespan must replay bit-for-bit"
            );
            assert_eq!(
                a.flowtime.to_bits(),
                b.flowtime.to_bits(),
                "{family}: flowtime must replay bit-for-bit"
            );
            let c = run(6);
            assert_ne!(
                a.flowtime.to_bits(),
                c.flowtime.to_bits(),
                "{family}: runs must depend on the seed"
            );
        }
    }

    // Noisy replay across every family lives in tests/dynamic_grid.rs
    // (`noisy_runs_replay_bit_for_bit_across_scenario_variants`).

    #[test]
    fn event_digest_is_scheduler_invariant_without_noise() {
        // The exogenous event stream (arrivals + churn) must not depend
        // on which scheduler — or which objective λ — plans the batches,
        // as long as execution noise is off.
        use cmags_core::Objective;
        let config = SimConfig::churny();
        let digest_of = |scheduler: &mut dyn crate::scheduler::BatchScheduler| {
            Simulation::new(config.clone(), 5)
                .run(scheduler)
                .event_digest
        };
        let reference = digest_of(&mut HeuristicScheduler::new(ConstructiveKind::MinMin));
        assert_ne!(reference, 0, "a non-trivial run must fold events");
        assert_eq!(
            digest_of(&mut HeuristicScheduler::new(ConstructiveKind::Mct)),
            reference
        );
        assert_eq!(digest_of(&mut RandomScheduler), reference);
        assert_eq!(
            digest_of(&mut CmaScheduler::new(StopCondition::children(60))),
            reference
        );
        assert_eq!(
            digest_of(
                &mut CmaScheduler::new(StopCondition::children(60))
                    .with_objective(Objective::mean_flowtime())
            ),
            reference,
            "the objective λ must not perturb the simulation RNG"
        );
    }

    #[test]
    fn event_digest_depends_on_the_seed() {
        let run = |seed| {
            let mut s = HeuristicScheduler::new(ConstructiveKind::Mct);
            Simulation::new(SimConfig::churny(), seed)
                .run(&mut s)
                .event_digest
        };
        assert_eq!(run(3), run(3), "same seed, same stream");
        assert_ne!(run(3), run(4), "different seed, different stream");
    }

    #[test]
    fn degrading_family_shrinks_the_pool_and_resubmits() {
        let mut s = HeuristicScheduler::new(ConstructiveKind::Mct);
        let report =
            Simulation::new(SimConfig::from_family(ScenarioFamily::Degrading), 0).run(&mut s);
        assert_eq!(report.jobs_completed, report.jobs_submitted);
        assert!(
            report.resubmissions > 0,
            "departures must kill and resubmit work"
        );
    }

    #[test]
    fn volatile_family_survives_mass_departure_shocks() {
        let mut s = HeuristicScheduler::new(ConstructiveKind::Mct);
        let report =
            Simulation::new(SimConfig::from_family(ScenarioFamily::Volatile), 2).run(&mut s);
        assert_eq!(report.jobs_completed, report.jobs_submitted);
        assert!(
            report.resubmissions > 0,
            "a shock must kill and resubmit work"
        );
    }

    #[test]
    #[should_panic(expected = "at least two initial machines")]
    fn rejects_single_machine_config() {
        let mut config = SimConfig::small();
        config.initial_machines = 1;
        let _ = Simulation::new(config, 0);
    }
}
