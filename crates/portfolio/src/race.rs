//! The racing loop: synchronised rounds, ranking, elimination and elite
//! sharing over any set of [`Metaheuristic`] engines.

use std::time::{Duration, Instant};

use cmags_core::diversity::DiversityPoint;
use cmags_core::engine::{DiversitySink, Metaheuristic, Runner, StopCondition};
use cmags_core::{Objectives, Schedule};

use crate::config::{PortfolioConfig, RoundBudget, RoundSpec, Sharing};

/// One entrant of a race: a named, ready-built engine. Engines are
/// resumable state machines (construction = initialisation), so a
/// contender arrives warm and keeps its state across rounds — that is
/// what makes elimination cheap and elite sharing meaningful.
pub struct Contender<'a> {
    name: String,
    engine: Box<dyn Metaheuristic + Send + 'a>,
}

impl<'a> Contender<'a> {
    /// Wraps a built engine under a display name.
    #[must_use]
    pub fn new(name: impl Into<String>, engine: Box<dyn Metaheuristic + Send + 'a>) -> Self {
        Self {
            name: name.into(),
            engine,
        }
    }

    /// The display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Per-contender final report.
#[derive(Debug, Clone)]
pub struct EntryReport {
    /// Contender name.
    pub name: String,
    /// Uniform ranking score of its final best (lower is better).
    pub score: f64,
    /// Final best objectives.
    pub objectives: Objectives,
    /// Final best fitness under the engine's **own** scalarisation.
    pub fitness: f64,
    /// Engine iterations completed.
    pub iterations: u64,
    /// Children generated.
    pub children: u64,
    /// Round (1-based) this contender was frozen in; `None` = survived
    /// to the end.
    pub eliminated_in: Option<u64>,
    /// Elite offers this engine accepted via its warm-start hook.
    pub injected_accepted: u64,
    /// Per-iteration diversity series (only when
    /// [`PortfolioConfig::record_diversity`] is set and the engine
    /// exposes population diversity).
    pub diversity: Vec<DiversityPoint>,
}

/// One round's barrier decisions.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round number, 1-based.
    pub round: u64,
    /// Best live entry (index into the contender list) after the round.
    pub best_entry: usize,
    /// Its uniform score, sampled after the round's run and before the
    /// barrier's elite sharing.
    pub best_score: f64,
    /// Entries frozen at this barrier, worst-ranked first.
    pub eliminated: Vec<usize>,
    /// Elite offers accepted during this barrier's sharing step.
    pub injections_accepted: u64,
}

/// Result of a race.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Index of the winning contender.
    pub winner: usize,
    /// Its name.
    pub winner_name: String,
    /// Its uniform score (lower is better).
    pub best_score: f64,
    /// Its best objectives.
    pub best_objectives: Objectives,
    /// Its best schedule, when the engine exposes one.
    pub best_schedule: Option<Schedule>,
    /// Per-contender reports, in contender order.
    pub entries: Vec<EntryReport>,
    /// Per-round barrier decisions, in order.
    pub rounds: Vec<RoundReport>,
    /// Children generated across all contenders (the shared budget
    /// actually spent).
    pub total_children: u64,
    /// Wall-clock duration of the whole race.
    pub elapsed: Duration,
}

impl PortfolioOutcome {
    /// Names of the frozen contenders in elimination order (earliest
    /// round first, worst-ranked first within a round).
    #[must_use]
    pub fn elimination_order(&self) -> Vec<&str> {
        self.rounds
            .iter()
            .flat_map(|r| r.eliminated.iter().map(|&i| self.entries[i].name.as_str()))
            .collect()
    }
}

/// Per-entry live state during the race.
struct EntryState<'a> {
    contender: Contender<'a>,
    eliminated_in: Option<u64>,
    injected_accepted: u64,
    diversity: DiversitySink,
}

/// Runs a race over `contenders` under `config`, ranking engines by
/// `score` over their best objectives (lower is better; ties keep the
/// lower entry index). See the crate docs for the round/elimination/
/// sharing semantics and the determinism contract.
///
/// # Panics
///
/// Panics on an empty contender list or a structurally invalid
/// configuration ([`PortfolioConfig::validate`]).
#[must_use]
pub fn race<'a, S>(
    config: &PortfolioConfig,
    contenders: Vec<Contender<'a>>,
    score: S,
) -> PortfolioOutcome
where
    S: Fn(Objectives) -> f64,
{
    assert!(!contenders.is_empty(), "race needs at least one contender");
    config.validate();
    // lint:allow(no-wall-clock-in-sim): legit race-elapsed anchor — per-round budgets are exact children/iteration counts (bit-identical across 1/2/8 worker threads); this read only stamps the informational elapsed field of the outcome.
    let start = Instant::now();

    let mut entries: Vec<EntryState<'a>> = contenders
        .into_iter()
        .map(|contender| EntryState {
            contender,
            eliminated_in: None,
            injected_accepted: 0,
            diversity: DiversitySink::new(),
        })
        .collect();
    let mut rounds: Vec<RoundReport> = Vec::new();

    let mut round_index = 0usize;
    while let Some(spec) = config.spec(round_index) {
        let round_no = round_index as u64 + 1;

        // --- Per-entry round budgets (None = eliminated or exhausted). ---
        let elapsed = start.elapsed();
        let stops: Vec<Option<StopCondition>> = entries
            .iter()
            .map(|entry| {
                if entry.eliminated_in.is_some() {
                    return None;
                }
                round_stop(&config.stop, spec, entry.contender.engine.as_ref(), elapsed)
            })
            .collect();
        if stops.iter().all(Option::is_none) {
            break; // every live engine has exhausted the total budget
        }

        // --- Run the round: each live engine on one worker, contiguous
        // chunks over `threads` scoped workers. Workers only decide
        // *where* an engine runs; every engine's computation is fixed by
        // its own state, so results are thread-count independent. ---
        let record_diversity = config.record_diversity;
        let mut jobs: Vec<(&mut EntryState<'a>, StopCondition)> = entries
            .iter_mut()
            .zip(&stops)
            .filter_map(|(entry, stop)| stop.map(|stop| (entry, stop)))
            .collect();
        let workers = config.threads.clamp(1, jobs.len());
        let chunk = jobs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            while !jobs.is_empty() {
                let batch: Vec<(&mut EntryState<'a>, StopCondition)> =
                    jobs.drain(..chunk.min(jobs.len())).collect();
                scope.spawn(move || {
                    for (entry, stop) in batch {
                        run_round(entry, stop, start, record_diversity);
                    }
                });
            }
        });

        // --- Rank the live field (uniform score, ties by index). ---
        let scores: Vec<f64> = entries
            .iter()
            .map(|e| score(e.contender.engine.best_objectives()))
            .collect();
        let mut live: Vec<usize> = (0..entries.len())
            .filter(|&i| entries[i].eliminated_in.is_none())
            .collect();
        live.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));

        // --- Successive halving: freeze the tail of the ranking. ---
        let keep = spec.survivors_after.min(live.len());
        let mut eliminated: Vec<usize> = live.split_off(keep);
        eliminated.reverse(); // worst-ranked first
        for &i in &eliminated {
            entries[i].eliminated_in = Some(round_no);
        }

        // --- Elite sharing among the survivors that ran this round.
        // Budget-exhausted entries keep their rank (their result is
        // real) but neither donate nor receive: an engine that spends
        // nothing must not keep "improving" on donated elites. An
        // engine that exhausted *during* this round still exchanges
        // once (it did the round's work), then drops out. ---
        let sharers: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| stops[i].is_some())
            .collect();
        let injections_accepted = share(&mut entries, &sharers, config.sharing);

        let best_entry = live[0];
        rounds.push(RoundReport {
            round: round_no,
            best_entry,
            best_score: scores[best_entry],
            eliminated,
            injections_accepted,
        });
        round_index += 1;

        // --- Target short-circuit: once any live engine has met the
        // configured target (under its own fitness, matching the
        // runner's stop semantics), further rounds only burn the other
        // contenders' budgets — the decision is made. ---
        if let Some(target) = config.stop.target_fitness() {
            if live
                .iter()
                .any(|&i| entries[i].contender.engine.best_fitness() <= target)
            {
                break;
            }
        }
    }

    // --- Final ranking over the whole field, NOT just the survivors:
    // engines improve under their *own* scalarisation, so an entry's
    // *uniform* score can regress after elimination-time ranking (e.g.
    // a makespan-only GA trading flowtime away), leaving an eliminated
    // engine strictly best under the uniform score. Ties break by
    // index, identically to the per-round ranking. ---
    let final_scores: Vec<f64> = entries
        .iter()
        .map(|e| score(e.contender.engine.best_objectives()))
        .collect();
    let winner = (0..entries.len())
        .min_by(|&a, &b| final_scores[a].total_cmp(&final_scores[b]).then(a.cmp(&b)))
        .expect("at least one contender");
    let best_schedule = entries[winner].contender.engine.best_schedule().cloned();
    let best_objectives = entries[winner].contender.engine.best_objectives();
    let best_score = final_scores[winner];
    let winner_name = entries[winner].contender.name.clone();
    let total_children = entries.iter().map(|e| e.contender.engine.children()).sum();

    let entries = entries
        .into_iter()
        .zip(final_scores)
        .map(|(entry, entry_score)| {
            let engine = &entry.contender.engine;
            EntryReport {
                score: entry_score,
                objectives: engine.best_objectives(),
                fitness: engine.best_fitness(),
                iterations: engine.iterations(),
                children: engine.children(),
                eliminated_in: entry.eliminated_in,
                injected_accepted: entry.injected_accepted,
                diversity: entry.diversity.into_points(),
                name: entry.contender.name,
            }
        })
        .collect();

    PortfolioOutcome {
        winner,
        winner_name,
        best_score,
        best_objectives,
        best_schedule,
        entries,
        rounds,
        total_children,
        elapsed: start.elapsed(),
    }
}

/// Computes the absolute stop condition of one engine's next round, or
/// `None` when the engine has exhausted the total budget.
fn round_stop(
    total: &StopCondition,
    spec: &RoundSpec,
    engine: &dyn Metaheuristic,
    elapsed: Duration,
) -> Option<StopCondition> {
    if total.should_stop(
        elapsed,
        engine.iterations(),
        engine.children(),
        engine.best_fitness(),
    ) {
        return None;
    }
    let mut stop = match spec.budget {
        RoundBudget::Children(step) => {
            let mut target = engine.children().saturating_add(step);
            if let Some(cap) = total.max_children {
                target = target.min(cap);
            }
            let mut stop = StopCondition::children(target);
            if let Some(cap) = total.max_iterations {
                stop = stop.and_iterations(cap);
            }
            stop
        }
        RoundBudget::Iterations(step) => {
            let mut target = engine.iterations().saturating_add(step);
            if let Some(cap) = total.max_iterations {
                target = target.min(cap);
            }
            let mut stop = StopCondition::iterations(target);
            if let Some(cap) = total.max_children {
                stop = stop.and_children(cap);
            }
            stop
        }
    };
    if let Some(limit) = total.time_limit {
        stop = stop.and_time(limit);
    }
    if let Some(target) = total.target_fitness() {
        stop = stop.and_target_fitness(target);
    }
    Some(stop)
}

/// Advances one engine through one round.
fn run_round(entry: &mut EntryState<'_>, stop: StopCondition, start: Instant, diversity: bool) {
    let runner = Runner::new(stop);
    let engine = entry.contender.engine.as_mut();
    if diversity {
        let _ = runner.run_from(start, engine, &mut [&mut entry.diversity]);
    } else {
        let _ = runner.run_from(start, engine, &mut []);
    }
}

/// Applies the sharing policy to the ranked survivors (`live` is
/// best-first). Returns the number of accepted injections.
fn share(entries: &mut [EntryState<'_>], live: &[usize], sharing: Sharing) -> u64 {
    if live.len() < 2 {
        return 0;
    }
    let mut accepted = 0u64;
    match sharing {
        Sharing::Off => {}
        Sharing::Broadcast => {
            // Every survivor receives the best elite among the *other*
            // survivors: the field absorbs the leader's discoveries and
            // the leader absorbs the runner-up's — a full exchange, so
            // the eventual winner carries the whole portfolio's best.
            let leader = live[0];
            let runner_up = live[1];
            let leader_elite = entries[leader].contender.engine.best_schedule().cloned();
            let runner_up_elite = entries[runner_up].contender.engine.best_schedule().cloned();
            // Recipients in entry-index order for a stable, thread-count
            // independent injection sequence.
            let mut recipients: Vec<usize> = live.to_vec();
            recipients.sort_unstable();
            for i in recipients {
                let elite = if i == leader {
                    &runner_up_elite
                } else {
                    &leader_elite
                };
                let Some(elite) = elite else { continue };
                if entries[i].contender.engine.inject(elite) {
                    entries[i].injected_accepted += 1;
                    accepted += 1;
                }
            }
        }
        Sharing::Ring => {
            // Ring over entry-index order, donors snapshotted before any
            // injection so migration is simultaneous, not cascading.
            let mut ring: Vec<usize> = live.to_vec();
            ring.sort_unstable();
            let elites: Vec<Option<Schedule>> = ring
                .iter()
                .map(|&i| entries[i].contender.engine.best_schedule().cloned())
                .collect();
            for (pos, elite) in elites.into_iter().enumerate() {
                let Some(elite) = elite else { continue };
                let recipient = ring[(pos + 1) % ring.len()];
                if entries[recipient].contender.engine.inject(&elite) {
                    entries[recipient].injected_accepted += 1;
                    accepted += 1;
                }
            }
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry_seed;

    /// Deterministic toy engine: fitness decays multiplicatively per
    /// step, integrates injected schedules whose first assignment
    /// encodes a fitness value.
    struct Walker {
        fitness: f64,
        rate: f64,
        steps: u64,
        schedule: Schedule,
    }

    impl Walker {
        fn new(start: f64, rate: f64) -> Self {
            Self {
                fitness: start,
                rate,
                steps: 0,
                schedule: encode(start),
            }
        }
    }

    /// Encodes a fitness into a two-job schedule (value in centiunits).
    fn encode(fitness: f64) -> Schedule {
        Schedule::from_assignment(vec![(fitness * 100.0) as u32, 0])
    }

    fn decode(schedule: &Schedule) -> f64 {
        f64::from(schedule.machine_of(0)) / 100.0
    }

    impl Metaheuristic for Walker {
        fn name(&self) -> &'static str {
            "walker"
        }
        fn step(&mut self) {
            self.steps += 1;
            self.fitness *= self.rate;
            self.schedule = encode(self.fitness);
        }
        fn iterations(&self) -> u64 {
            self.steps / 2
        }
        fn children(&self) -> u64 {
            self.steps
        }
        fn best_fitness(&self) -> f64 {
            self.fitness
        }
        fn best_objectives(&self) -> Objectives {
            Objectives {
                makespan: self.fitness,
                flowtime: self.fitness,
            }
        }
        fn best_schedule(&self) -> Option<&Schedule> {
            Some(&self.schedule)
        }
        fn inject(&mut self, schedule: &Schedule) -> bool {
            let offered = decode(schedule);
            if offered < self.fitness {
                self.fitness = offered;
                self.schedule = schedule.clone();
                true
            } else {
                false
            }
        }
    }

    fn field() -> Vec<Contender<'static>> {
        // Rates chosen so rankings shift across rounds: "late" starts
        // worse but descends fastest.
        vec![
            Contender::new("steady", Box::new(Walker::new(100.0, 0.9))),
            Contender::new("late", Box::new(Walker::new(140.0, 0.7))),
            Contender::new("flat", Box::new(Walker::new(90.0, 0.99))),
            Contender::new("stuck", Box::new(Walker::new(200.0, 1.0))),
        ]
    }

    #[test]
    fn race_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            let config = PortfolioConfig::successive_halving(4, 40).with_threads(threads);
            race(&config, field(), |o| o.makespan)
        };
        let reference = run(1);
        for threads in [2, 8] {
            let outcome = run(threads);
            assert_eq!(outcome.winner, reference.winner, "{threads} threads");
            assert_eq!(
                outcome.best_score.to_bits(),
                reference.best_score.to_bits(),
                "{threads} threads"
            );
            assert_eq!(
                outcome.elimination_order(),
                reference.elimination_order(),
                "{threads} threads"
            );
            assert_eq!(outcome.total_children, reference.total_children);
        }
    }

    #[test]
    fn halving_freezes_the_field_down_to_one() {
        let config = PortfolioConfig::successive_halving(4, 40);
        let outcome = race(&config, field(), |o| o.makespan);
        let eliminated: Vec<u64> = outcome
            .entries
            .iter()
            .filter_map(|e| e.eliminated_in)
            .collect();
        assert_eq!(eliminated.len(), 3, "three of four frozen");
        assert!(outcome.entries[outcome.winner].eliminated_in.is_none());
        // Frozen engines spend no further budget after their round.
        let stuck = &outcome.entries[3];
        // First elimination barrier = second round of the first level.
        assert_eq!(stuck.eliminated_in, Some(2), "non-improver goes first");
        assert!(stuck.children < outcome.entries[outcome.winner].children);
    }

    #[test]
    fn broadcast_sharing_reaches_survivors() {
        // After round 1 "late" leads and "steady" survives; the donor's
        // elite beats the survivor, so the injection must land.
        let config = PortfolioConfig::successive_halving(4, 40);
        let outcome = race(&config, field(), |o| o.makespan);
        let total_accepted: u64 = outcome.entries.iter().map(|e| e.injected_accepted).sum();
        assert!(total_accepted > 0, "at least one elite offer lands");
        let reported: u64 = outcome.rounds.iter().map(|r| r.injections_accepted).sum();
        assert_eq!(total_accepted, reported);
    }

    #[test]
    fn ring_sharing_equalises_an_island_field() {
        let config = PortfolioConfig::uniform_rounds(4, RoundBudget::Children(4)).with_threads(2);
        let contenders = vec![
            Contender::new("a", Box::new(Walker::new(50.0, 0.8))),
            Contender::new("b", Box::new(Walker::new(500.0, 1.0))),
            Contender::new("c", Box::new(Walker::new(400.0, 1.0))),
        ];
        let outcome = race(&config, contenders, |o| o.makespan);
        assert!(outcome.rounds.iter().all(|r| r.eliminated.is_empty()));
        // "a"'s elite propagates around the ring: everyone ends at or
        // below a's starting point.
        for entry in &outcome.entries {
            assert!(entry.score <= 50.0, "{}: {}", entry.name, entry.score);
        }
    }

    #[test]
    fn total_stop_caps_every_engine() {
        let config = PortfolioConfig::uniform_rounds(10, RoundBudget::Children(6))
            .with_stop(StopCondition::children(15));
        let contenders = vec![
            Contender::new("a", Box::new(Walker::new(10.0, 0.9))),
            Contender::new("b", Box::new(Walker::new(20.0, 0.9))),
        ];
        let outcome = race(&config, contenders, |o| o.makespan);
        for entry in &outcome.entries {
            assert_eq!(entry.children, 15, "{}", entry.name);
        }
        assert_eq!(outcome.total_children, 30);
    }

    #[test]
    fn repeat_last_runs_until_budget_exhausted() {
        let config = PortfolioConfig::uniform_rounds(1, RoundBudget::Children(4))
            .with_repeat_last()
            .with_stop(StopCondition::children(21));
        let contenders = vec![
            Contender::new("a", Box::new(Walker::new(10.0, 0.9))),
            Contender::new("b", Box::new(Walker::new(20.0, 0.9))),
        ];
        let outcome = race(&config, contenders, |o| o.makespan);
        assert_eq!(outcome.total_children, 42, "4+4+4+4+4+1 per engine");
        assert_eq!(outcome.rounds.len(), 6);
    }

    /// Walker burning `children_per_step` budget per step — engines
    /// with different child costs exhaust a shared cap at different
    /// rounds.
    struct CostlyWalker {
        inner: Walker,
        children_per_step: u64,
    }

    impl Metaheuristic for CostlyWalker {
        fn name(&self) -> &'static str {
            "costly-walker"
        }
        fn step(&mut self) {
            self.inner.step();
            self.inner.steps += self.children_per_step - 1;
        }
        fn iterations(&self) -> u64 {
            self.inner.children() / self.children_per_step / 2
        }
        fn children(&self) -> u64 {
            self.inner.children()
        }
        fn best_fitness(&self) -> f64 {
            self.inner.best_fitness()
        }
        fn best_objectives(&self) -> Objectives {
            self.inner.best_objectives()
        }
        fn best_schedule(&self) -> Option<&Schedule> {
            self.inner.best_schedule()
        }
        fn inject(&mut self, schedule: &Schedule) -> bool {
            self.inner.inject(schedule)
        }
    }

    #[test]
    fn exhausted_contenders_stop_exchanging_elites() {
        // "expensive" burns 10 children per step and cannot improve; it
        // exhausts the 30-children cap in round 1. "steady" keeps
        // improving for several more rounds. Once expensive has spent
        // its budget it must stop receiving steady's elites: its final
        // score freezes at whatever it held at its last active barrier
        // instead of tracking steady all the way down.
        let config = PortfolioConfig::uniform_rounds(1, RoundBudget::Iterations(2))
            .with_repeat_last()
            .with_stop(StopCondition::children(30));
        let contenders: Vec<Contender<'static>> = vec![
            Contender::new(
                "expensive",
                Box::new(CostlyWalker {
                    inner: Walker::new(100.0, 1.0),
                    children_per_step: 10,
                }),
            ),
            Contender::new("steady", Box::new(Walker::new(90.0, 0.5))),
        ];
        let outcome = race(&config, contenders, |o| o.makespan);
        let expensive = &outcome.entries[0];
        let steady = &outcome.entries[1];
        assert_eq!(expensive.children, 30, "hit the cap inside round 1");
        assert_eq!(steady.children, 30, "ran to the cap");
        assert!(steady.score < 1.0, "steady keeps improving");
        // Expensive exchanged at its one active barrier (steady was at
        // 90·0.5⁴ ≈ 5.6 then) and froze there — far above steady's
        // final score, which it would have tracked pre-fix.
        assert!(
            expensive.score > 5.0,
            "a spent engine must not keep absorbing elites (got {})",
            expensive.score
        );
        assert_eq!(expensive.injected_accepted, 1);
    }

    #[test]
    fn winner_report_is_consistent() {
        let config = PortfolioConfig::successive_halving(4, 24);
        let outcome = race(&config, field(), |o| o.makespan);
        let winner = &outcome.entries[outcome.winner];
        assert_eq!(winner.name, outcome.winner_name);
        assert_eq!(winner.score.to_bits(), outcome.best_score.to_bits());
        let schedule = outcome.best_schedule.expect("walkers expose schedules");
        // The toy encoding truncates to centiunits.
        assert!((decode(&schedule) - winner.score).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one contender")]
    fn empty_field_rejected() {
        let config = PortfolioConfig::successive_halving(1, 10);
        let _ = race(&config, Vec::new(), |o| o.makespan);
    }

    #[test]
    fn entry_seed_feeds_distinct_contenders() {
        // Smoke-check the helper composes with contender construction.
        let contenders: Vec<Contender<'static>> = (0..3)
            .map(|i| {
                let seed = entry_seed(7, i);
                Contender::new(
                    format!("w{i}"),
                    Box::new(Walker::new(100.0 + seed as f64 % 10.0, 0.9)),
                )
            })
            .collect();
        assert_eq!(contenders.len(), 3);
    }
}
