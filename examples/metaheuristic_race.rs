//! Race the full metaheuristic line-up on one benchmark instance under
//! an equal wall-clock budget and print the leaderboard.
//!
//! This mirrors the methodology of the paper's Tables 2–5 (equal
//! budgets, best result wins) but across the wider family this
//! workspace implements: the classic one-shot heuristics, Simulated
//! Annealing and Tabu Search (Braun et al.'s line-up), the baseline
//! GAs, the unstructured memetic algorithm, and the paper's cellular
//! memetic algorithm.
//!
//! ```text
//! cargo run --release --example metaheuristic_race [budget_ms]
//! ```

use std::time::Duration;

use cmags::prelude::*;

fn main() {
    let budget_ms: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let budget = StopCondition::time(Duration::from_millis(budget_ms));

    let class: InstanceClass = "u_c_hihi.0".parse().expect("valid label");
    let instance = braun::generate(class, 0);
    let problem = Problem::from_instance(&instance);
    println!(
        "instance {} ({} jobs x {} machines), budget {} ms per contender\n",
        instance.name(),
        problem.nb_jobs(),
        problem.nb_machines(),
        budget_ms
    );

    let mut leaderboard: Vec<(String, f64, f64)> = Vec::new();

    // One-shot heuristics (they ignore the budget — they need none).
    for kind in [
        ConstructiveKind::Olb,
        ConstructiveKind::Mct,
        ConstructiveKind::MinMin,
        ConstructiveKind::Sufferage,
        ConstructiveKind::LjfrSjfr,
    ] {
        let mut rng = rand::thread_rng();
        let schedule = kind.build_seeded(&problem, &mut rng);
        let objectives = evaluate(&problem, &schedule);
        leaderboard.push((
            kind.name().to_owned(),
            objectives.makespan,
            objectives.flowtime,
        ));
    }

    // Budgeted metaheuristics, one seeded run each.
    let seed = 42;
    let sa = SimulatedAnnealing::default()
        .with_stop(budget)
        .run(&problem, seed);
    leaderboard.push(("SA".into(), sa.objectives.makespan, sa.objectives.flowtime));

    let tabu = TabuSearch::default().with_stop(budget).run(&problem, seed);
    leaderboard.push((
        "Tabu".into(),
        tabu.objectives.makespan,
        tabu.objectives.flowtime,
    ));

    let braun_ga = BraunGa::default().with_stop(budget).run(&problem, seed);
    leaderboard.push((
        "Braun GA".into(),
        braun_ga.objectives.makespan,
        braun_ga.objectives.flowtime,
    ));

    let struggle = StruggleGa::default().with_stop(budget).run(&problem, seed);
    leaderboard.push((
        "Struggle GA".into(),
        struggle.objectives.makespan,
        struggle.objectives.flowtime,
    ));

    let panmictic = PanmicticMa::default().with_stop(budget).run(&problem, seed);
    leaderboard.push((
        "Panmictic MA".into(),
        panmictic.objectives.makespan,
        panmictic.objectives.flowtime,
    ));

    let cma = CmaConfig::paper().with_stop(budget).run(&problem, seed);
    leaderboard.push((
        "cMA".into(),
        cma.objectives.makespan,
        cma.objectives.flowtime,
    ));

    leaderboard.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "{:<4} {:<14} {:>14} {:>18}",
        "#", "contender", "makespan", "flowtime"
    );
    for (position, (name, makespan, flowtime)) in leaderboard.iter().enumerate() {
        println!(
            "{:<4} {:<14} {:>14.1} {:>18.1}",
            position + 1,
            name,
            makespan,
            flowtime
        );
    }
}
