//! Tables 2–5: best makespan / flowtime comparisons on the twelve
//! benchmark instances, with the paper's reported values alongside.

use cmags_core::Problem;
use cmags_ga::{BraunGa, SteadyStateGa, StruggleGa};
use cmags_heuristics::constructive::ConstructiveKind;

use crate::args::Ctx;
use crate::reference::{delta_percent, REFERENCES};
use crate::report::{fmt_percent, fmt_value, Table};
use crate::runner::{parallel_map, Algo, RunResult, Summary};

use super::suite_problems;

/// Best-of-runs results of one algorithm on every suite instance.
struct SuiteResults {
    /// Per instance: all run results.
    per_instance: Vec<Vec<RunResult>>,
}

impl SuiteResults {
    fn best_makespan(&self, instance: usize) -> f64 {
        Summary::of(
            &self.per_instance[instance]
                .iter()
                .map(|r| r.makespan)
                .collect::<Vec<_>>(),
        )
        .best
    }

    fn best_flowtime(&self, instance: usize) -> f64 {
        Summary::of(
            &self.per_instance[instance]
                .iter()
                .map(|r| r.flowtime)
                .collect::<Vec<_>>(),
        )
        .best
    }
}

/// Runs `algo` on every suite problem with the context's seeds/budget.
fn run_suite(ctx: &Ctx, problems: &[Problem], algo: &Algo) -> SuiteResults {
    let seeds = ctx.seeds();
    let jobs: Vec<(usize, u64)> = (0..problems.len())
        .flat_map(|i| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let algo = algo.clone().with_stop(ctx.stop);
    let flat: Vec<(usize, RunResult)> = parallel_map(jobs, ctx.threads, |(i, seed)| {
        (i, algo.run(&problems[i], seed))
    });
    let mut per_instance: Vec<Vec<RunResult>> = (0..problems.len()).map(|_| Vec::new()).collect();
    for (i, result) in flat {
        per_instance[i].push(result);
    }
    SuiteResults { per_instance }
}

/// Table 2: makespan — our cMA vs our Braun-style GA, with the paper's
/// values for both.
#[must_use]
pub fn table2(ctx: &Ctx) -> Table {
    let problems = suite_problems(ctx);
    let cma = run_suite(ctx, &problems, &Algo::Cma(ctx.cma_config()));
    let ga = run_suite(ctx, &problems, &Algo::BraunGa(BraunGa::default()));

    let mut table = Table::new(
        "Table 2 makespan cMA vs Braun GA",
        &[
            "Instance",
            "Braun GA (ours)",
            "cMA (ours)",
            "Δ ours",
            "Braun GA (paper)",
            "cMA (paper)",
            "Δ paper",
        ],
    );
    for (i, reference) in REFERENCES.iter().enumerate() {
        let ga_best = ga.best_makespan(i);
        let cma_best = cma.best_makespan(i);
        table.push_row(vec![
            reference.instance.to_owned(),
            fmt_value(ga_best),
            fmt_value(cma_best),
            fmt_percent(delta_percent(ga_best, cma_best)),
            fmt_value(reference.braun_ga_makespan),
            fmt_value(reference.cma_makespan),
            fmt_percent(delta_percent(
                reference.braun_ga_makespan,
                reference.cma_makespan,
            )),
        ]);
    }
    table
}

/// Table 3: makespan — our cMA vs our steady-state GA and Struggle GA,
/// with the paper's values.
#[must_use]
pub fn table3(ctx: &Ctx) -> Table {
    let problems = suite_problems(ctx);
    let cma = run_suite(ctx, &problems, &Algo::Cma(ctx.cma_config()));
    let ssga = run_suite(ctx, &problems, &Algo::SteadyState(SteadyStateGa::default()));
    let struggle = run_suite(ctx, &problems, &Algo::Struggle(StruggleGa::default()));

    let mut table = Table::new(
        "Table 3 makespan cMA vs GA variants",
        &[
            "Instance",
            "SS-GA (ours)",
            "Struggle (ours)",
            "cMA (ours)",
            "C&X GA (paper)",
            "Struggle (paper)",
            "cMA (paper)",
        ],
    );
    for (i, reference) in REFERENCES.iter().enumerate() {
        table.push_row(vec![
            reference.instance.to_owned(),
            fmt_value(ssga.best_makespan(i)),
            fmt_value(struggle.best_makespan(i)),
            fmt_value(cma.best_makespan(i)),
            fmt_value(reference.cx_ga_makespan),
            fmt_value(reference.struggle_makespan),
            fmt_value(reference.cma_makespan),
        ]);
    }
    table
}

/// Table 4: flowtime — LJFR-SJFR vs our cMA, with the paper's values.
#[must_use]
pub fn table4(ctx: &Ctx) -> Table {
    let problems = suite_problems(ctx);
    let cma = run_suite(ctx, &problems, &Algo::Cma(ctx.cma_config()));
    let ljfr = run_suite(ctx, &problems, &Algo::Heuristic(ConstructiveKind::LjfrSjfr));

    let mut table = Table::new(
        "Table 4 flowtime LJFR-SJFR vs cMA",
        &[
            "Instance",
            "LJFR-SJFR (ours)",
            "cMA (ours)",
            "Δ ours",
            "LJFR-SJFR (paper)",
            "cMA (paper)",
            "Δ paper",
        ],
    );
    for (i, reference) in REFERENCES.iter().enumerate() {
        let seed_flow = ljfr.best_flowtime(i);
        let cma_flow = cma.best_flowtime(i);
        table.push_row(vec![
            reference.instance.to_owned(),
            fmt_value(seed_flow),
            fmt_value(cma_flow),
            fmt_percent(delta_percent(seed_flow, cma_flow)),
            fmt_value(reference.ljfr_sjfr_flowtime),
            fmt_value(reference.cma_flowtime),
            fmt_percent(delta_percent(
                reference.ljfr_sjfr_flowtime,
                reference.cma_flowtime,
            )),
        ]);
    }
    table
}

/// Table 5: flowtime — our Struggle GA vs our cMA, with the paper's
/// values.
#[must_use]
pub fn table5(ctx: &Ctx) -> Table {
    let problems = suite_problems(ctx);
    let cma = run_suite(ctx, &problems, &Algo::Cma(ctx.cma_config()));
    let struggle = run_suite(ctx, &problems, &Algo::Struggle(StruggleGa::default()));

    let mut table = Table::new(
        "Table 5 flowtime Struggle GA vs cMA",
        &[
            "Instance",
            "Struggle (ours)",
            "cMA (ours)",
            "Δ ours",
            "Struggle (paper)",
            "cMA (paper)",
            "Δ paper",
        ],
    );
    for (i, reference) in REFERENCES.iter().enumerate() {
        let struggle_flow = struggle.best_flowtime(i);
        let cma_flow = cma.best_flowtime(i);
        table.push_row(vec![
            reference.instance.to_owned(),
            fmt_value(struggle_flow),
            fmt_value(cma_flow),
            fmt_percent(delta_percent(struggle_flow, cma_flow)),
            fmt_value(reference.struggle_flowtime),
            fmt_value(reference.cma_flowtime),
            fmt_percent(delta_percent(
                reference.struggle_flowtime,
                reference.cma_flowtime,
            )),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::super::test_ctx;
    use super::*;

    #[test]
    fn table2_shape_and_parseability() {
        let ctx = test_ctx(24, 4, 1, 60);
        let t = table2(&ctx);
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.headers.len(), 7);
        for row in &t.rows {
            let ours: f64 = row[2].parse().unwrap();
            assert!(ours > 0.0);
            assert!(row[3].ends_with('%'));
        }
    }

    #[test]
    fn table4_cma_beats_seed_heuristic_on_flowtime() {
        // The central Table 4 claim must hold already at a tiny budget:
        // the cMA starts from LJFR-SJFR and only accepts improvements.
        let ctx = test_ctx(32, 4, 2, 200);
        let t = table4(&ctx);
        for row in &t.rows {
            let seed: f64 = row[1].parse().unwrap();
            let cma: f64 = row[2].parse().unwrap();
            assert!(
                cma <= seed * 1.0001,
                "{}: cMA flowtime {cma} should not exceed LJFR-SJFR {seed}",
                row[0]
            );
        }
    }

    #[test]
    fn table5_has_both_measured_and_reference_columns() {
        let ctx = test_ctx(24, 4, 1, 60);
        let t = table5(&ctx);
        assert_eq!(t.rows.len(), 12);
        let reference_col: f64 = t.rows[0][4].parse().unwrap();
        assert!(reference_col > 1e8, "paper flowtime magnitudes are ~1e9");
    }

    #[test]
    fn table3_runs_three_algorithms() {
        let ctx = test_ctx(24, 4, 1, 60);
        let t = table3(&ctx);
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            for cell in &row[1..=3] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0);
            }
        }
    }
}
