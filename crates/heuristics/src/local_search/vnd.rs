//! VND — Variable Neighbourhood Descent composite (extension).

use cmags_core::{EvalState, Problem, Schedule};
use rand::RngCore;

use super::{LocalMctSwap, LocalMove, LocalSearch, SteepestLocalMove};

/// Variable Neighbourhood Descent over the paper's three methods.
///
/// Not part of the original paper — an ablation extension (`DESIGN.md`
/// §4, ABL-*): each step tries the neighbourhoods in increasing cost
/// order (LM → SLM → LMCTS) and commits the first improvement found.
/// Escapes single-neighbourhood local optima at bounded extra cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vnd;

impl LocalSearch for Vnd {
    fn name(&self) -> &'static str {
        "VND"
    }

    fn step(
        &self,
        problem: &Problem,
        schedule: &mut Schedule,
        eval: &mut EvalState,
        rng: &mut dyn RngCore,
    ) -> bool {
        LocalMove.step(problem, schedule, eval, rng)
            || SteepestLocalMove.step(problem, schedule, eval, rng)
            || LocalMctSwap.step(problem, schedule, eval, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{problem, random_start};
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn improves_from_random_start() {
        let p = problem();
        let (mut s, mut eval) = random_start(&p, 77);
        let before = eval.fitness(&p);
        let mut rng = SmallRng::seed_from_u64(78);
        let improved = Vnd.run(&p, &mut s, &mut eval, &mut rng, 40);
        assert!(improved > 0);
        assert!(eval.fitness(&p) < before);
        eval.debug_validate(&p, &s);
    }

    #[test]
    fn at_equal_steps_reaches_at_least_lm_quality() {
        use super::super::LocalMove;
        let p = problem();
        let mut vnd_total = 0.0;
        let mut lm_total = 0.0;
        for seed in 0..4 {
            let (mut s, mut e) = random_start(&p, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 9);
            Vnd.run(&p, &mut s, &mut e, &mut rng, 150);
            vnd_total += e.fitness(&p);

            let (mut s, mut e) = random_start(&p, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 9);
            LocalMove.run(&p, &mut s, &mut e, &mut rng, 150);
            lm_total += e.fitness(&p);
        }
        assert!(vnd_total <= lm_total + 1e-9);
    }
}
