//! Regenerates the paper's Figure 2 (see `cmags_bench::experiments::figs`).

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::figs::{run_figure, Figure};
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    let (summary, raw) = run_figure(&ctx, Figure::LocalSearch);
    emit(&ctx, &[summary, raw]);
}
