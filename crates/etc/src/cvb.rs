//! Coefficient-of-Variation-Based (CVB) ETC generator (Ali, Siegel,
//! Maheswaran, Hensgen & Ali, 2000).
//!
//! The range-based method of [`crate::braun`] controls heterogeneity
//! through the *width* of uniform ranges, which couples heterogeneity
//! to the mean. Ali et al.'s CVB method decouples them: task and
//! machine heterogeneity are specified directly as **coefficients of
//! variation** (`V = σ/μ`) of gamma distributions,
//!
//! 1. per job, draw a baseline `q[i] ~ Gamma(α_task, β_task)` with
//!    `α_task = 1/V_task²` and `β_task = μ_task/α_task`;
//! 2. per entry, draw `ETC[i][j] ~ Gamma(α_mach, q[i]/α_mach)` with
//!    `α_mach = 1/V_mach²` — so row `i` has mean `q[i]` and
//!    coefficient of variation `V_mach`;
//! 3. apply the usual consistency post-processing (row sort /
//!    even-column sort).
//!
//! Gamma variates are drawn with the Marsaglia-Tsang (2000) squeeze
//! method (with the Ahrens boost for shape < 1), hand-rolled because
//! `rand_distr` is outside the approved dependency set — the sampler
//! is ~30 lines and property-tested against the distribution moments.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{Consistency, EtcMatrix, GridInstance, Heterogeneity, InstanceClass};

/// CVB parameters: mean task execution time and the two coefficients
/// of variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvbParams {
    /// Mean of the per-job baseline distribution (`μ_task`).
    pub mean_task: f64,
    /// Task (job) heterogeneity: coefficient of variation of the
    /// baselines.
    pub v_task: f64,
    /// Machine heterogeneity: coefficient of variation within a row.
    pub v_mach: f64,
}

impl CvbParams {
    /// The coefficients used throughout the HC literature: `V = 0.9`
    /// for high and `V = 0.1` for low heterogeneity, `μ_task = 1000`.
    #[must_use]
    pub fn for_class(class: InstanceClass) -> Self {
        let v = |h: Heterogeneity| match h {
            Heterogeneity::Hi => 0.9,
            Heterogeneity::Lo => 0.1,
        };
        Self {
            mean_task: 1000.0,
            v_task: v(class.job_heterogeneity),
            v_mach: v(class.machine_heterogeneity),
        }
    }

    fn validate(&self) {
        assert!(
            self.mean_task > 0.0 && self.mean_task.is_finite(),
            "mean task time must be positive and finite"
        );
        assert!(
            self.v_task > 0.0 && self.v_mach > 0.0,
            "coefficients of variation must be positive"
        );
    }
}

/// Generates a CVB ETC matrix for `class` (consistency and dimensions
/// from the class, heterogeneity from `params`), deterministically per
/// `(class, stream)`.
///
/// # Panics
///
/// Panics on non-positive parameters.
#[must_use]
pub fn generate_matrix(class: InstanceClass, params: CvbParams, stream: u64) -> EtcMatrix {
    params.validate();
    // Offset the stream so CVB draws never collide with the range-based
    // generator's stream space for the same class label.
    let mut rng = SmallRng::seed_from_u64(class.stable_seed(stream).wrapping_add(0xC5B));
    let nb_jobs = class.nb_jobs as usize;
    let nb_machines = class.nb_machines as usize;

    let alpha_task = 1.0 / (params.v_task * params.v_task);
    let beta_task = params.mean_task / alpha_task;
    let alpha_mach = 1.0 / (params.v_mach * params.v_mach);

    let mut data = Vec::with_capacity(nb_jobs * nb_machines);
    for _ in 0..nb_jobs {
        let baseline = gamma(alpha_task, beta_task, &mut rng);
        let beta_mach = baseline / alpha_mach;
        for _ in 0..nb_machines {
            data.push(gamma(alpha_mach, beta_mach, &mut rng));
        }
    }
    let mut matrix = EtcMatrix::from_rows(nb_jobs, nb_machines, data);
    match class.consistency {
        Consistency::Consistent => matrix.sort_rows(),
        Consistency::SemiConsistent => matrix.sort_even_columns(),
        Consistency::Inconsistent => {}
    }
    matrix
}

/// Generates a full [`GridInstance`] with the class's default CVB
/// parameters and a `cvb_` name prefix.
#[must_use]
pub fn generate(class: InstanceClass, stream: u64) -> GridInstance {
    let matrix = generate_matrix(class, CvbParams::for_class(class), stream);
    GridInstance::new(format!("cvb_{}", class.label()), matrix)
}

/// Draws one `Gamma(shape α, scale β)` variate.
///
/// Marsaglia-Tsang for `α ≥ 1`; for `α < 1` the Ahrens boost
/// `Gamma(α) = Gamma(α+1) · U^{1/α}` is applied.
///
/// # Panics
///
/// Panics on non-positive shape or scale.
pub fn gamma(shape: f64, scale: f64, rng: &mut dyn RngCore) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma requires positive shape and scale"
    );
    if shape < 1.0 {
        // Boost: draw at shape + 1 and scale back.
        let boost = rng.gen::<f64>().powf(1.0 / shape);
        return gamma(shape + 1.0, scale, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // One standard normal via Box-Muller (the second variate is
        // discarded — simplicity beats caching in a cold path).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();

        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Squeeze, then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(label: &str) -> InstanceClass {
        label.parse().unwrap()
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        (mean, var.sqrt() / mean)
    }

    #[test]
    fn gamma_moments_match_high_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Gamma(α=100/9, β) ⇒ mean αβ, cv 1/sqrt(α) = 0.3.
        let alpha = 100.0 / 9.0;
        let beta = 90.0;
        let samples: Vec<f64> = (0..40_000).map(|_| gamma(alpha, beta, &mut rng)).collect();
        let (mean, cv) = moments(&samples);
        assert!((mean / (alpha * beta) - 1.0).abs() < 0.02, "mean {mean}");
        assert!((cv - 0.3).abs() < 0.01, "cv {cv}");
    }

    #[test]
    fn gamma_moments_match_low_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Shape < 1 exercises the Ahrens boost path.
        let samples: Vec<f64> = (0..40_000).map(|_| gamma(0.5, 2.0, &mut rng)).collect();
        let (mean, cv) = moments(&samples);
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
        assert!((cv - (1.0f64 / 0.5).sqrt()).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn gamma_is_always_positive() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(gamma(1.23456, 0.5, &mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive shape")]
    fn gamma_rejects_zero_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = gamma(0.0, 1.0, &mut rng);
    }

    #[test]
    fn matrix_heterogeneity_tracks_parameters() {
        // Row CV should approximate v_mach; baseline CV v_task.
        let c = class("u_i_hihi.0").with_dims(256, 64);
        let m = generate_matrix(c, CvbParams::for_class(c), 0);
        let mut row_cvs = Vec::new();
        let mut row_means = Vec::new();
        for row in m.rows() {
            let (mean, cv) = moments(row);
            row_means.push(mean);
            row_cvs.push(cv);
        }
        let avg_row_cv = row_cvs.iter().sum::<f64>() / row_cvs.len() as f64;
        assert!(
            (avg_row_cv - 0.9).abs() < 0.15,
            "machine cv {avg_row_cv} should be ≈ 0.9"
        );
        let (baseline_mean, baseline_cv) = moments(&row_means);
        assert!(
            (baseline_mean / 1000.0 - 1.0).abs() < 0.25,
            "task mean {baseline_mean}"
        );
        assert!(
            (baseline_cv - 0.9).abs() < 0.2,
            "task cv {baseline_cv} should be ≈ 0.9"
        );
    }

    #[test]
    fn lo_heterogeneity_is_much_tighter_than_hi() {
        let hi = generate_matrix(
            class("u_i_hihi.0").with_dims(128, 16),
            CvbParams::for_class(class("u_i_hihi.0")),
            0,
        );
        let lo = generate_matrix(
            class("u_i_lolo.0").with_dims(128, 16),
            CvbParams::for_class(class("u_i_lolo.0")),
            0,
        );
        let spread = |m: &EtcMatrix| m.max_etc() / m.min_etc();
        assert!(
            spread(&hi) > 10.0 * spread(&lo),
            "hi spread {} vs lo spread {}",
            spread(&hi),
            spread(&lo)
        );
    }

    #[test]
    fn consistency_post_processing_applies() {
        assert!(generate(class("u_c_hihi.0").with_dims(64, 8), 0)
            .etc()
            .is_consistent());
        assert_eq!(
            generate(class("u_s_hihi.0").with_dims(64, 8), 0)
                .etc()
                .classify(),
            Consistency::SemiConsistent
        );
        assert_eq!(
            generate(class("u_i_hihi.0").with_dims(64, 8), 0)
                .etc()
                .classify(),
            Consistency::Inconsistent
        );
    }

    #[test]
    fn deterministic_and_stream_decorrelated() {
        let c = class("u_c_lolo.0").with_dims(32, 4);
        let p = CvbParams::for_class(c);
        assert_eq!(generate_matrix(c, p, 7), generate_matrix(c, p, 7));
        assert_ne!(generate_matrix(c, p, 7), generate_matrix(c, p, 8));
    }

    #[test]
    fn cvb_differs_from_range_based_draws() {
        let c = class("u_i_hihi.0").with_dims(32, 4);
        let cvb = generate_matrix(c, CvbParams::for_class(c), 0);
        let range_based = crate::braun::generate_matrix(c, 0);
        assert_ne!(cvb, range_based);
    }

    #[test]
    fn instance_label_is_prefixed() {
        let inst = generate(class("u_c_hihi.0").with_dims(16, 2), 0);
        assert_eq!(inst.name(), "cvb_u_c_hihi.0");
    }
}
