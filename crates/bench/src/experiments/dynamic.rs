//! DYN: the dynamic-scheduler experiment (paper §1/§6 claim).
//!
//! Runs the discrete-event simulator with the cMA in periodic batch mode
//! against the racing portfolio and the fast constructive baselines,
//! sweeping the whole [`ScenarioFamily`] catalog (calm, churny, bursty,
//! diurnal, flash-crowd, degrading, volatile) — or the `--families`
//! subset — and, when `--lambda` names several response weights, the
//! tunable objective axis: each λ retargets the metaheuristic batch
//! schedulers at `(1-λ)·classic_fitness + λ·mean_flowtime`, probing
//! whether they can close the mean-response gap to Min-Min.

use std::io;
use std::path::Path;

use cmags_cma::StopCondition;
use cmags_core::telemetry::{MetricsRegistry, Phase};
use cmags_core::Objective;
use cmags_gridsim::scheduler::{
    BatchScheduler, CmaScheduler, HeuristicScheduler, PortfolioScheduler, RandomScheduler,
};
use cmags_gridsim::{ScenarioFamily, SimConfig, Simulation, TelemetryReport};
use cmags_heuristics::constructive::ConstructiveKind;

use crate::args::Ctx;
use crate::report::{fmt_value, Table};

/// The λ-targetable metaheuristic schedulers of the roster (the racing
/// portfolio gets the same per-activation budget as the cMA — children
/// split across its contenders, time/target bounds capping the whole
/// race — so the comparison is equal-effort on every axis).
fn metaheuristics(budget: StopCondition, objective: Objective) -> Vec<Box<dyn BatchScheduler>> {
    vec![
        Box::new(CmaScheduler::new(budget).with_objective(objective)),
        Box::new(PortfolioScheduler::new(budget).with_objective(objective)),
    ]
}

/// The λ-independent constructive baselines.
fn baselines() -> Vec<Box<dyn BatchScheduler>> {
    vec![
        Box::new(HeuristicScheduler::new(ConstructiveKind::MinMin)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::Mct)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::Olb)),
        Box::new(RandomScheduler),
    ]
}

/// Builds the scheduler roster shared by the experiment tables and the
/// [`scenario_sweep`]: the objective-retargeted metaheuristics plus
/// (when `with_baselines`) the constructive baselines.
fn roster(
    budget: StopCondition,
    objective: Objective,
    with_baselines: bool,
) -> Vec<Box<dyn BatchScheduler>> {
    let mut schedulers = metaheuristics(budget, objective);
    if with_baselines {
        schedulers.extend(baselines());
    }
    schedulers
}

/// Column headers of the scenario tables. The response percentiles come
/// from the tick-domain histograms of [`TelemetryReport`] — exact counts,
/// ≤ 12.5 % bucket-edge quantile error.
const SCENARIO_COLUMNS: [&str; 12] = [
    "Scheduler",
    "jobs",
    "resub",
    "makespan",
    "mean response",
    "p50 resp",
    "p95 resp",
    "p99 resp",
    "mean wait",
    "util %",
    "activations",
    "sched wall s",
];

/// Opt-in observability attachments for the experiment's simulations
/// (derived from `--metrics` / `--trace-out`; default: both off).
#[derive(Debug, Clone, Copy, Default)]
struct RunOpts<'a> {
    /// Enable wall-clock phase profiling on every run.
    profile: bool,
    /// Append a JSONL event trace of every run to this one file.
    trace_out: Option<&'a Path>,
}

/// One scheduler's simulation of one scenario: the rendered table row
/// plus the telemetry the `--metrics` summary tables are built from.
struct RunRecord {
    row: Vec<String>,
    scheduler: String,
    telemetry: TelemetryReport,
    portfolio: Option<MetricsRegistry>,
}

/// Opens the shared trace file in append mode, so every run of the
/// sweep lands in one JSONL stream (runs are delimited by their
/// `run_start`/`run_end` records).
fn open_trace(path: &Path) -> Option<Box<dyn io::Write>> {
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(file) => Some(Box::new(io::BufWriter::new(file))),
        Err(e) => {
            eprintln!("warning: cannot open trace file {}: {e}", path.display());
            None
        }
    }
}

/// Runs `schedulers` over one scenario, one record per run.
fn scenario_runs(
    schedulers: Vec<Box<dyn BatchScheduler>>,
    config: &SimConfig,
    seed: u64,
    opts: RunOpts<'_>,
) -> Vec<RunRecord> {
    schedulers
        .into_iter()
        .map(|mut scheduler| {
            let mut sim = Simulation::new(config.clone(), seed);
            if opts.profile {
                sim = sim.with_profiling();
            }
            if let Some(writer) = opts.trace_out.and_then(open_trace) {
                sim = sim.with_trace(writer);
            }
            let report = sim.run(scheduler.as_mut());
            let pct = |q: f64| fmt_value(report.response_percentile(q).unwrap_or(f64::NAN));
            let row = vec![
                report.scheduler.clone(),
                report.jobs_completed.to_string(),
                report.resubmissions.to_string(),
                fmt_value(report.realized_makespan),
                fmt_value(report.mean_response()),
                pct(0.50),
                pct(0.95),
                pct(0.99),
                fmt_value(report.mean_wait()),
                format!("{:.1}", report.utilization() * 100.0),
                report.activations.to_string(),
                format!("{:.3}", report.scheduler_wall_s),
            ];
            RunRecord {
                row,
                scheduler: report.scheduler.clone(),
                portfolio: scheduler.metrics().cloned(),
                telemetry: report.telemetry,
            }
        })
        .collect()
}

/// Runs `schedulers` over one scenario and renders one row per run.
fn scenario_rows(
    schedulers: Vec<Box<dyn BatchScheduler>>,
    config: &SimConfig,
    seed: u64,
) -> Vec<Vec<String>> {
    scenario_runs(schedulers, config, seed, RunOpts::default())
        .into_iter()
        .map(|r| r.row)
        .collect()
}

/// Column headers of the `--metrics` phase-profile tables.
const PHASE_COLUMNS: [&str; 9] = [
    "Scheduler",
    "scheduler %",
    "snapshot %",
    "dispatch %",
    "queue %",
    "fault %",
    "profiled wall s",
    "dispatches",
    "retries",
];

/// Renders the per-scheduler phase attribution of one scenario (the
/// `--metrics` companion of a scenario table).
fn telemetry_table<'a>(title: &str, records: impl Iterator<Item = &'a RunRecord>) -> Table {
    let mut table = Table::new(title, &PHASE_COLUMNS);
    for record in records {
        let phases = &record.telemetry.phases;
        let share = |p: Phase| format!("{:.1}", phases.share(p) * 100.0);
        table.push_row(vec![
            record.scheduler.clone(),
            share(Phase::Scheduler),
            share(Phase::SnapshotBuild),
            share(Phase::Dispatch),
            share(Phase::Queue),
            share(Phase::FaultHandling),
            // Microsecond precision: a fast constructive scheduler on a
            // small test scenario attributes well under a millisecond,
            // and the plumbing test asserts this column is nonzero.
            format!("{:.6}", phases.total_wall_s()),
            record.telemetry.dispatches.to_string(),
            record.telemetry.retries_scheduled.to_string(),
        ]);
    }
    table
}

/// Flattens a scheduler's metrics registry (the portfolio's per-contender
/// per-round counters) into a two-column summary table.
fn registry_table(title: &str, registry: &MetricsRegistry) -> Table {
    let mut table = Table::new(title, &["metric", "value"]);
    for (name, counter) in registry.counters() {
        table.push_row(vec![name.to_owned(), counter.get().to_string()]);
    }
    for (name, gauge) in registry.gauges() {
        table.push_row(vec![
            name.to_owned(),
            format!("last={} high={}", gauge.get(), gauge.high_water()),
        ]);
    }
    for (name, hist) in registry.histograms() {
        let q = |q: f64| {
            hist.quantile(q)
                .map_or_else(|| "—".to_owned(), |v| v.to_string())
        };
        table.push_row(vec![
            name.to_owned(),
            format!(
                "count={} p50={} p95={} p99={}",
                hist.count(),
                q(0.50),
                q(0.95),
                q(0.99)
            ),
        ]);
    }
    table
}

/// Runs one scenario for every scheduler and tabulates the realized
/// metrics.
#[must_use]
pub fn scenario_table(
    title: &str,
    config: &SimConfig,
    seed: u64,
    cma_budget: StopCondition,
    objective: Objective,
) -> Table {
    let mut table = Table::new(title, &SCENARIO_COLUMNS);
    for row in scenario_rows(roster(cma_budget, objective, true), config, seed) {
        table.push_row(row);
    }
    table
}

/// The full dynamic experiment: one table per scenario family in the
/// context's sweep (default: the whole catalog) and per `--lambda`
/// response weight (default: classic only). `--metrics` appends a
/// phase-attribution table per scenario table plus the portfolio's
/// per-contender registry; `--trace-out` appends every run's JSONL
/// event trace to the named file.
#[must_use]
pub fn dynamic(ctx: &Ctx) -> Vec<Table> {
    // Scale the per-activation cMA budget off the context: the dynamic
    // claim is about *short* activations.
    let budget = StopCondition::children(2_000).and_time(
        ctx.stop
            .time_limit
            .unwrap_or_else(|| std::time::Duration::from_millis(500)),
    );
    let opts = RunOpts {
        profile: ctx.metrics,
        trace_out: ctx.trace_out.as_deref(),
    };
    let mut tables = Vec::new();
    for &family in &ctx.families {
        let config = SimConfig::from_family(family);
        // The constructive baselines are λ-independent: simulate them
        // once per family and splice the identical rows into every λ
        // table instead of re-running full simulations per weight.
        let baseline_runs = scenario_runs(baselines(), &config, ctx.seed, opts);
        for &objective in &ctx.lambdas {
            let title = if objective.is_classic() {
                format!("Dynamic grid {family} scenario")
            } else {
                format!("Dynamic grid {family} scenario (λ = {objective})")
            };
            let meta_runs =
                scenario_runs(metaheuristics(budget, objective), &config, ctx.seed, opts);
            let mut table = Table::new(&title, &SCENARIO_COLUMNS);
            for row in meta_runs
                .iter()
                .map(|r| r.row.clone())
                .chain(baseline_runs.iter().map(|r| r.row.clone()))
            {
                table.push_row(row);
            }
            tables.push(table);
            if ctx.metrics {
                tables.push(telemetry_table(
                    &format!("{title} telemetry"),
                    meta_runs.iter().chain(baseline_runs.iter()),
                ));
                for run in &meta_runs {
                    if let Some(registry) = &run.portfolio {
                        tables.push(registry_table(
                            &format!("{title} portfolio metrics"),
                            registry,
                        ));
                    }
                }
            }
        }
    }
    tables
}

/// One `(family, scheduler, λ)` cell of the scenario sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Scenario family of the run.
    pub family: ScenarioFamily,
    /// Scheduler name (λ-tagged for retargeted metaheuristics).
    pub scheduler: String,
    /// Response weight the scheduler optimised (0 for the λ-independent
    /// baselines).
    pub lambda: f64,
    /// Mean response time per completed job.
    pub mean_response: f64,
    /// Median response time (seconds), from the exact tick-domain
    /// histogram (NaN when no job completed).
    pub p50_response: f64,
    /// 95th-percentile response time (seconds).
    pub p95_response: f64,
    /// 99th-percentile response time (seconds) — the tail-latency
    /// column of the per-family quality comparison.
    pub p99_response: f64,
    /// Completion time of the last job.
    pub realized_makespan: f64,
    /// Digest of the exogenous event stream — identical across the
    /// whole roster of one `(family, seed)` sweep by construction
    /// (asserted, so a scheduler perturbing the simulation RNG cannot
    /// slip through a bench run unnoticed).
    pub event_digest: u64,
}

/// Sweeps every `(family, scheduler, λ)` cell at one seed — the quality
/// comparison behind `BENCH_scenarios.json`. The λ-independent
/// constructive baselines run once per family; the metaheuristics run
/// once per entry of `objectives`.
///
/// # Panics
///
/// Panics if any simulation loses a job (every submitted job must end
/// completed or, under a fault family's give-up bound, dropped), or
/// if two schedulers of the same `(family, seed)` observe different
/// exogenous event streams.
#[must_use]
pub fn scenario_sweep(
    families: &[ScenarioFamily],
    seed: u64,
    budget: StopCondition,
    objectives: &[Objective],
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &family in families {
        let mut family_digest: Option<u64> = None;
        let mut sweep =
            |schedulers: Vec<Box<dyn BatchScheduler>>, lambda: f64, cells: &mut Vec<SweepCell>| {
                for mut scheduler in schedulers {
                    let config = SimConfig::from_family(family);
                    let report = Simulation::new(config, seed).run(scheduler.as_mut());
                    assert_eq!(
                        report.jobs_completed + report.jobs_dropped,
                        report.jobs_submitted,
                        "{family}/{}: simulation lost jobs",
                        report.scheduler
                    );
                    let expected = *family_digest.get_or_insert(report.event_digest);
                    assert_eq!(
                        report.event_digest, expected,
                        "{family}/{}: scheduler perturbed the exogenous event stream",
                        report.scheduler
                    );
                    cells.push(SweepCell {
                        family,
                        lambda,
                        mean_response: report.mean_response(),
                        p50_response: report.response_percentile(0.50).unwrap_or(f64::NAN),
                        p95_response: report.response_percentile(0.95).unwrap_or(f64::NAN),
                        p99_response: report.response_percentile(0.99).unwrap_or(f64::NAN),
                        realized_makespan: report.realized_makespan,
                        event_digest: report.event_digest,
                        scheduler: report.scheduler,
                    });
                }
            };
        // Baselines once per family, always recorded at λ = 0 — they
        // never optimise a scalarisation, whatever the sweep's list.
        sweep(baselines(), 0.0, &mut cells);
        for &objective in objectives {
            sweep(
                metaheuristics(budget, objective),
                objective.lambda(),
                &mut cells,
            );
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::super::test_ctx;
    use super::*;

    #[test]
    fn calm_scenario_ranks_cma_over_random() {
        let t = scenario_table(
            "test calm",
            &SimConfig::small(),
            3,
            StopCondition::children(300),
            Objective::classic(),
        );
        assert_eq!(t.rows.len(), 6);
        let response_of = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))[4]
                .parse()
                .unwrap()
        };
        assert!(
            response_of("cMA") < response_of("Random"),
            "cMA must beat random dispatch on mean response"
        );
        assert!(
            response_of("Portfolio") < response_of("Random"),
            "the racing portfolio must beat random dispatch too"
        );
        // The percentile columns are populated and ordered for every row.
        for row in &t.rows {
            let p: Vec<f64> = (5..8).map(|i| row[i].parse().unwrap()).collect();
            assert!(
                p[0] > 0.0 && p[0] <= p[1] && p[1] <= p[2],
                "{}: p50/p95/p99 must be positive and ordered: {p:?}",
                row[0]
            );
        }
    }

    #[test]
    fn metrics_flag_appends_telemetry_tables_and_trace_lands_in_the_file() {
        let mut ctx = test_ctx(24, 3, 1, 80);
        ctx.families = vec![ScenarioFamily::Calm];
        ctx.metrics = true;
        let dir = std::env::temp_dir().join("cmags-bench-dyn-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        ctx.trace_out = Some(path.clone());
        let tables = dynamic(&ctx);
        // Scenario table + phase table + portfolio registry table.
        assert_eq!(tables.len(), 3);
        let phases = tables
            .iter()
            .find(|t| t.title.ends_with("telemetry"))
            .expect("--metrics must append a phase table");
        assert_eq!(phases.rows.len(), 6, "one phase row per scheduler");
        for row in &phases.rows {
            let wall: f64 = row[6].parse().unwrap();
            assert!(wall > 0.0, "{}: profiling must attribute wall time", row[0]);
        }
        let portfolio = tables
            .iter()
            .find(|t| t.title.ends_with("portfolio metrics"))
            .expect("--metrics must dump the portfolio registry");
        assert!(
            portfolio
                .rows
                .iter()
                .any(|r| r[0] == "portfolio.activations" && r[1] != "0"),
            "registry dump must carry the activation counter"
        );
        // Every run appended its trace to the one file; records are
        // flat JSON objects delimited per run.
        let trace = std::fs::read_to_string(&path).unwrap();
        let starts = trace
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"run_start\""))
            .count();
        let ends = trace
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"run_end\""))
            .count();
        assert_eq!((starts, ends), (6, 6), "one trace per scheduler run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_produces_one_table_per_family_and_lambda() {
        let mut ctx = test_ctx(32, 4, 1, 100);
        ctx.families = vec![ScenarioFamily::Calm, ScenarioFamily::Bursty];
        ctx.lambdas = vec![Objective::classic(), Objective::mean_flowtime()];
        let tables = dynamic(&ctx);
        assert_eq!(tables.len(), 4);
        assert!(tables[0].title.contains("calm"));
        assert!(tables[1].title.contains("calm") && tables[1].title.contains("λ = 1"));
        assert!(tables[2].title.contains("bursty"));
        for t in &tables {
            // Every scheduler finished every job.
            for row in &t.rows {
                let jobs: u64 = row[1].parse().unwrap();
                assert!(jobs > 0);
            }
        }
    }

    #[test]
    fn scenario_sweep_covers_every_cell_once_per_lambda() {
        let families = [ScenarioFamily::Calm, ScenarioFamily::FlashCrowd];
        let objectives = [Objective::classic(), Objective::mean_flowtime()];
        let cells = scenario_sweep(&families, 3, StopCondition::children(150), &objectives);
        // Per family: 4 baselines (once, at λ = 0) plus 2 metaheuristics
        // per swept objective.
        assert_eq!(cells.len(), families.len() * (4 + 2 * 2));
        assert!(
            cells
                .iter()
                .filter(
                    |c| !(c.scheduler.starts_with("cMA") || c.scheduler.starts_with("Portfolio"))
                )
                .all(|c| c.lambda == 0.0),
            "baseline cells are always recorded at λ = 0"
        );
        for cell in &cells {
            assert!(families.contains(&cell.family));
            assert!(!cell.scheduler.is_empty());
            assert!(
                cell.mean_response > 0.0 && cell.realized_makespan > 0.0,
                "{}/{}",
                cell.family,
                cell.scheduler
            );
            assert!(
                cell.p50_response > 0.0
                    && cell.p50_response <= cell.p95_response
                    && cell.p95_response <= cell.p99_response,
                "{}/{}: percentile columns must be positive and ordered",
                cell.family,
                cell.scheduler
            );
        }
        let tagged = cells.iter().filter(|c| c.lambda == 1.0).count();
        assert_eq!(tagged, families.len() * 2, "λ-tagged metaheuristic cells");
        for family in families {
            let digests: Vec<u64> = cells
                .iter()
                .filter(|c| c.family == family)
                .map(|c| c.event_digest)
                .collect();
            assert!(
                digests.windows(2).all(|w| w[0] == w[1]),
                "{family}: event stream must be identical across the roster"
            );
        }
    }
}
