//! The shared engine runtime every metaheuristic in the workspace plugs
//! into.
//!
//! Before this module existed, each algorithm crate (`cmags-cma`,
//! `cmags-ga`, `cmags-mo`) carried its own run loop, stop-condition
//! plumbing and best-so-far trace recording. The runtime factors that
//! scaffolding out once:
//!
//! * [`Metaheuristic`] — the engine contract: a state machine advanced
//!   one atomic [`Metaheuristic::step`] at a time (typically one
//!   candidate generation), exposing its counters and best-so-far
//!   telemetry;
//! * [`Runner`] — owns the budget: evaluates the [`StopCondition`]
//!   before every step (so children/iteration budgets are honoured
//!   *exactly*, mid-generation included) and notifies observers;
//! * [`Observer`] / [`TraceSink`] — pluggable run telemetry; the trace
//!   sink records the best-so-far [`TracePoint`] series behind the
//!   paper's Figs. 2–5;
//! * [`StopCondition`] — combined wall-clock / iteration / children /
//!   target-fitness bounds (formerly `cmags_cma::stop`, moved down so
//!   every engine can share it without depending on the cMA crate).
//!
//! Because the runner advances engines through a uniform trait, harness
//! code can race any set of engines under one budget, and run-loop
//! improvements (new stop kinds, new observers, richer traces) land once
//! and benefit every algorithm. Engines additionally expose optional
//! **warm-start hooks** ([`Metaheuristic::best_schedule`] /
//! [`Metaheuristic::inject`]) so harnesses can migrate elite solutions
//! between running engines, and a [`Metaheuristic::population_diversity`]
//! reading the runner samples once per iteration into
//! [`Observer::on_iteration`].
//!
//! ## Example
//!
//! A miniature engine that walks an integer toward zero:
//!
//! ```
//! use cmags_core::engine::{Metaheuristic, Runner, StopCondition};
//! use cmags_core::Objectives;
//!
//! struct Halver {
//!     value: f64,
//!     steps: u64,
//! }
//!
//! impl Metaheuristic for Halver {
//!     fn name(&self) -> &'static str {
//!         "halver"
//!     }
//!     fn step(&mut self) {
//!         self.value /= 2.0;
//!         self.steps += 1;
//!     }
//!     fn iterations(&self) -> u64 {
//!         self.steps
//!     }
//!     fn children(&self) -> u64 {
//!         self.steps
//!     }
//!     fn best_fitness(&self) -> f64 {
//!         self.value
//!     }
//!     fn best_objectives(&self) -> Objectives {
//!         Objectives { makespan: self.value, flowtime: self.value }
//!     }
//! }
//!
//! let mut engine = Halver { value: 1024.0, steps: 0 };
//! let (stats, trace) = Runner::new(StopCondition::children(4)).run_traced(&mut engine);
//! assert_eq!(stats.children, 4);
//! assert_eq!(engine.value, 64.0);
//! assert_eq!(trace.len(), 2 + 4, "start + one improvement per step + finish");
//! ```

pub mod observer;
pub mod runner;
pub mod stop;
pub mod trace;

pub use observer::{DiversitySink, Observer, Snapshot, TraceSink};
pub use runner::{RunStats, Runner};
pub use stop::StopCondition;
pub use trace::TracePoint;

use crate::diversity::DiversitySample;
use crate::{Objectives, Schedule};

/// A step-driven metaheuristic engine.
///
/// Implementations are resumable state machines: construction performs
/// initialisation (population seeding, initial local search, …) and every
/// [`Metaheuristic::step`] performs one atomic unit of search — by
/// convention the generation and integration of **one candidate
/// solution**, so the [`Runner`] can honour children budgets exactly.
///
/// Engines own their RNG and define their own outer-iteration notion
/// (cMA outer iterations, generational GA generations, steady-state
/// steps, MO sweeps); the runner only reads the counters.
pub trait Metaheuristic {
    /// Human-readable engine name for reports and errors.
    fn name(&self) -> &'static str;

    /// Advances the engine by one atomic unit of work.
    fn step(&mut self);

    /// Engine-defined outer iterations completed so far.
    fn iterations(&self) -> u64;

    /// Candidate solutions generated so far.
    fn children(&self) -> u64;

    /// Best-so-far scalar, lower is better. Drives target-fitness stops
    /// and improvement detection. Scalarised engines report their
    /// weighted fitness; dominance-based engines report a front
    /// indicator (negated hypervolume), so "improvement" means "the
    /// front grew".
    fn best_fitness(&self) -> f64;

    /// Objectives of the best-so-far solution (for dominance-based
    /// engines: the ideal point of the current front).
    fn best_objectives(&self) -> Objectives;

    /// The best-so-far schedule, when the engine tracks one. Harnesses
    /// use it to migrate elites between engines (portfolio racing,
    /// island models) and to extract the winner's plan. Dominance-based
    /// engines without a single incumbent may return `None` (the
    /// default).
    fn best_schedule(&self) -> Option<&Schedule> {
        None
    }

    /// Warm-start hook: offers an externally found elite solution to the
    /// engine. Implementations evaluate `schedule` under their **own**
    /// fitness (engines may scalarise differently) and integrate it by
    /// their own replacement rules — population engines typically replace
    /// their worst individual, trajectory engines their current point —
    /// only when it strictly improves. Returns whether the solution was
    /// integrated. The default rejects every offer (engines without a
    /// meaningful insertion point stay self-contained).
    fn inject(&mut self, schedule: &Schedule) -> bool {
        let _ = schedule;
        false
    }

    /// Cheap population diversity reading (assignment entropy + fitness
    /// spread), sampled by the [`Runner`] once per completed engine
    /// iteration and forwarded to [`Observer::on_iteration`]. `None`
    /// (the default) for engines without a population or with a
    /// degenerate one.
    fn population_diversity(&self) -> Option<DiversitySample> {
        None
    }
}
