//! Seeded violation fixture: `no-ambient-entropy` positives. Ambient
//! OS randomness silently breaks seeded replay; each spelling fires.

/// Thread-local RNG handle.
pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

/// Seeding from the OS entropy pool.
pub fn seed_from_os() -> u64 {
    let rng = SmallRng::from_entropy();
    let _alt = StdRng::from_os_rng();
    let _direct = OsRng.next_u64();
    getrandom(&mut [0u8; 8]);
    rng.next_u64()
}
