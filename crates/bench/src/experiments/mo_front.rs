//! MO-FRONT: dominance-based multi-objective search (paper §6 future
//! work, beyond the λ-scan).
//!
//! Compares three ways of approximating the (makespan, flowtime) Pareto
//! front on one instance per consistency class:
//!
//! * **λ-scan** — the weighted-sum scan of `cmags_cma::pareto` (one
//!   scalarised cMA run per λ; exact only for the convex hull);
//! * **MoCell** — the cellular multi-objective memetic engine of
//!   `cmags_mo::mocell`;
//! * **NSGA-II** — the panmictic baseline of `cmags_mo::nsga2`.
//!
//! All methods receive the same total children budget (the λ-scan's
//! per-run budget × its number of runs). Fronts are scored with the
//! standard indicators against the union of everything found: larger
//! hypervolume share and smaller ε/IGD are better.

use cmags_cma::pareto::pareto_front;
use cmags_cma::StopCondition;
use cmags_core::{Objectives, Problem};
use cmags_etc::{braun, InstanceClass};
use cmags_mo::indicators::{additive_epsilon, hypervolume, igd, reference_point, spread};
use cmags_mo::ranking::non_dominated;
use cmags_mo::{MoCellConfig, Nsga2Config};

use crate::args::Ctx;
use crate::experiments::pareto_exp::LAMBDAS;
use crate::report::Table;

/// The instances scored (one per consistency class).
pub const INSTANCES: [&str; 3] = ["u_c_hihi.0", "u_i_hihi.0", "u_s_hihi.0"];

/// One method's front on one instance.
#[derive(Debug, Clone)]
struct MethodFront {
    method: &'static str,
    points: Vec<Objectives>,
}

/// Runs the three methods on each instance and tabulates the indicator
/// comparison.
#[must_use]
pub fn mo_front(ctx: &Ctx) -> Table {
    let mut table = Table::new(
        "Multi objective front comparison",
        &[
            "instance",
            "method",
            "front",
            "hv_share",
            "eps_to_union",
            "igd_to_union",
            "spread",
        ],
    );

    // Equalised budget: the λ-scan spends `per_run` once per λ, so the
    // single-run engines get |λ| times whichever bound is configured.
    let per_run = ctx.stop;
    let pooled = {
        let factor = LAMBDAS.len() as u64;
        let mut pooled = StopCondition::default();
        if let Some(limit) = per_run.time_limit {
            pooled = pooled.and_time(limit * factor as u32);
        }
        if let Some(children) = per_run.max_children {
            pooled = pooled.and_children(children * factor);
        }
        if pooled.is_bounded() {
            pooled
        } else {
            StopCondition::children(1_000 * factor)
        }
    };

    for label in INSTANCES {
        let class: InstanceClass = label.parse().expect("static label");
        let instance = braun::generate(
            class.with_dims(ctx.nb_jobs, ctx.nb_machines),
            super::SUITE_STREAM,
        );
        let problem = Problem::from_instance(&instance);

        let scan = pareto_front(&instance, &ctx.cma_config(), per_run, &LAMBDAS, ctx.seed);
        let mocell = MoCellConfig::suggested()
            .with_stop(pooled)
            .run(&problem, ctx.seed);
        let nsga2 = Nsga2Config::suggested()
            .with_stop(pooled)
            .run(&problem, ctx.seed);

        let fronts = [
            MethodFront {
                method: "lambda-scan",
                points: scan
                    .points()
                    .iter()
                    .map(|p| Objectives {
                        makespan: p.makespan,
                        flowtime: p.flowtime,
                    })
                    .collect(),
            },
            MethodFront {
                method: "MoCell",
                points: mocell.archive.objectives(),
            },
            MethodFront {
                method: "NSGA-II",
                points: nsga2.front.iter().map(|s| s.objectives).collect(),
            },
        ];

        // Union front and shared reference point.
        let union_all: Vec<Objectives> = fronts
            .iter()
            .flat_map(|f| f.points.iter().copied())
            .collect();
        let union_front: Vec<Objectives> = non_dominated(&union_all)
            .into_iter()
            .map(|i| union_all[i])
            .collect();
        let reference = reference_point(&[&union_all], 0.05);
        let hv_union = hypervolume(&union_front, reference);

        for front in &fronts {
            assert!(
                !front.points.is_empty(),
                "{}: empty front on {label}",
                front.method
            );
            let hv = hypervolume(&front.points, reference);
            table.push_row(vec![
                label.to_owned(),
                front.method.to_owned(),
                front.points.len().to_string(),
                format!("{:.4}", if hv_union > 0.0 { hv / hv_union } else { 1.0 }),
                format!("{:.4}", additive_epsilon(&front.points, &union_front)),
                format!("{:.4}", igd(&front.points, &union_front)),
                format!("{:.4}", spread(&front.points)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::super::test_ctx;
    use super::*;

    #[test]
    fn compares_three_methods_per_instance() {
        let ctx = test_ctx(32, 4, 1, 60);
        let t = mo_front(&ctx);
        assert_eq!(t.rows.len(), 3 * INSTANCES.len());
        for row in &t.rows {
            let hv_share: f64 = row[3].parse().unwrap();
            assert!(
                (0.0..=1.0 + 1e-9).contains(&hv_share),
                "hv share {hv_share} out of range"
            );
            let eps: f64 = row[4].parse().unwrap();
            // ε against a union that contains your own points is ≥ 0 and 0
            // only when the method alone spans the union front.
            assert!(eps >= -1e-9, "epsilon to union cannot be negative: {eps}");
            let igd_v: f64 = row[5].parse().unwrap();
            assert!(igd_v >= 0.0);
        }
    }

    #[test]
    fn hv_shares_bounded_by_union() {
        let ctx = test_ctx(24, 3, 1, 40);
        let t = mo_front(&ctx);
        let best_per_instance: Vec<f64> = INSTANCES
            .iter()
            .map(|label| {
                t.rows
                    .iter()
                    .filter(|r| r[0] == *label)
                    .map(|r| r[3].parse::<f64>().unwrap())
                    .fold(0.0, f64::max)
            })
            .collect();
        for best in best_per_instance {
            assert!(best > 0.0, "someone must dominate part of the union");
        }
    }
}
