//! CLI entry point: `cargo run -p cmags-xtask -- <command>`.
//!
//! Commands:
//!
//! * `lint [--root <path>]` — walk `crates/*/src` and `src/`, report
//!   determinism-rule findings as `file:line: [rule] message`, and exit
//!   nonzero if any survive. This is the CI gate.
//! * `rules` — print the rule table (name, what, why, scope) including
//!   the always-on pragma meta rules.

use std::path::PathBuf;
use std::process::ExitCode;

use cmags_xtask::{default_root, lint_workspace, META_RULES, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p cmags-xtask -- <lint [--root <path>] | rules>");
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint failed to walk {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if report.is_clean() {
        println!(
            "determinism lint clean: {} files, {} rules",
            report.files.len(),
            RULES.len()
        );
        return ExitCode::SUCCESS;
    }
    for finding in &report.findings {
        println!("{finding}");
    }
    eprintln!(
        "determinism lint: {} finding(s) in {} files — suppress only with \
         `// lint:allow(rule): reason`",
        report.findings.len(),
        report.files.len()
    );
    ExitCode::FAILURE
}

fn print_rules() {
    println!("determinism rules (suppress with `// lint:allow(rule): reason`):\n");
    for rule in RULES {
        println!("  {}", rule.name);
        println!("    flags: {}", rule.what);
        println!("    why:   {}", rule.why);
        println!("    scope: {}\n", rule.scope);
    }
    println!("pragma meta rules (always on, not suppressible):\n");
    for rule in META_RULES {
        println!("  {}", rule.name);
        println!("    flags: {}", rule.what);
        println!("    why:   {}\n", rule.why);
    }
}
