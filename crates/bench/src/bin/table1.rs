//! Prints the tuned configuration — the paper's Table 1 — as read back
//! from `CmaConfig::paper()`, so the shipped defaults are auditable.

use cmags_bench::args::{Args, Ctx};
use cmags_bench::report::{emit, Table};
use cmags_cma::CmaConfig;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    let c = CmaConfig::paper();
    let mut table = Table::new("Table 1 parameter values", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("max exec time", "90 s (paper protocol)".to_owned()),
        ("population height", c.pop_height.to_string()),
        ("population width", c.pop_width.to_string()),
        ("nb solutions to recombine", c.nb_to_recombine.to_string()),
        ("nb recombinations", c.nb_recombinations.to_string()),
        ("nb mutations", c.nb_mutations.to_string()),
        ("start choice", c.seeding.name().to_owned()),
        ("neighborhood pattern", c.neighborhood.name().to_owned()),
        ("recombination order", c.rec_order.name().to_owned()),
        ("mutation order", c.mut_order.name().to_owned()),
        ("recombine choice", c.crossover.name().to_owned()),
        ("recombine selection", c.selection.name()),
        ("mutate choice", c.mutation.name().to_owned()),
        ("local search choice", c.local_search.name().to_owned()),
        ("nb local search iterations", c.ls_iterations.to_string()),
        ("add only if better", c.add_only_if_better.to_string()),
        (
            "lambda",
            cmags_core::FitnessWeights::default().lambda().to_string(),
        ),
    ];
    for (k, v) in rows {
        table.push_row(vec![k.to_owned(), v]);
    }
    emit(&ctx, &[table]);
}
