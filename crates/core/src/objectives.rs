//! Full (from-scratch) evaluation of the two objectives.

use crate::{ticks, Problem, Schedule};

/// The two objective values of a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Finishing time of the latest job: `max_m completion[m]`.
    pub makespan: f64,
    /// Sum of job finishing times under SPT intra-machine order.
    pub flowtime: f64,
}

impl Objectives {
    /// Flowtime divided by the number of machines — the "mean flowtime"
    /// the paper feeds into Eq. 3.
    #[must_use]
    pub fn mean_flowtime(&self, nb_machines: usize) -> f64 {
        self.flowtime / nb_machines as f64
    }
}

/// Evaluates a schedule from scratch in `O(jobs · log(jobs))`.
///
/// Buckets jobs by machine, sorts each bucket by ETC ascending (SPT), and
/// accumulates completions and finishing times. All arithmetic happens in
/// exact fixed-point ticks (see [`crate::ticks`]), so the result is
/// independent of summation order and agrees **bit-for-bit** with the
/// incremental/batched paths of [`crate::EvalState`] — a property the
/// test-suite checks exhaustively.
///
/// # Panics
///
/// Panics (in debug builds) if the schedule length mismatches the problem.
#[must_use]
pub fn evaluate(problem: &Problem, schedule: &Schedule) -> Objectives {
    debug_assert_eq!(schedule.nb_jobs(), problem.nb_jobs());
    let nb_machines = problem.nb_machines();

    // Bucket tick ETC values per machine.
    let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); nb_machines];
    for (job, machine) in schedule.iter() {
        buckets[machine as usize].push(problem.etc_ticks(job, machine));
    }

    let mut makespan = 0i128;
    let mut flowtime = 0i128;
    for (m, bucket) in buckets.iter_mut().enumerate() {
        // SPT order. Ties in tick value commute exactly under integer
        // addition, so any tie order yields the same objectives.
        bucket.sort_unstable();
        let mut clock = i128::from(problem.ready_ticks(m as u32));
        for &etc in bucket.iter() {
            clock += i128::from(etc);
            flowtime += clock;
        }
        // `clock` is now the machine completion time. An empty machine
        // contributes its ready time, mirroring Eq. 1/2 where completion
        // of an unused machine is its ready time.
        makespan = makespan.max(clock);
    }
    Objectives {
        makespan: ticks::time(makespan),
        flowtime: ticks::time(flowtime),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_etc::{EtcMatrix, GridInstance};

    fn problem_with_ready(ready: Vec<f64>) -> Problem {
        // 4 jobs x 2 machines.
        let etc = EtcMatrix::from_rows(
            4,
            2,
            vec![
                2.0, 4.0, //
                1.0, 8.0, //
                3.0, 2.0, //
                5.0, 6.0,
            ],
        );
        Problem::from_instance(&GridInstance::with_ready_times("t", etc, ready))
    }

    #[test]
    fn hand_computed_example() {
        let p = problem_with_ready(vec![0.0, 0.0]);
        // Jobs 0,1 on machine 0 (ETCs 2,1), jobs 2,3 on machine 1 (2,6).
        let s = Schedule::from_assignment(vec![0, 0, 1, 1]);
        let obj = evaluate(&p, &s);
        // m0: SPT order [1,2] -> finishes at 1,3; completion 3.
        // m1: SPT order [2,6] -> finishes at 2,8; completion 8.
        assert_eq!(obj.makespan, 8.0);
        assert_eq!(obj.flowtime, 1.0 + 3.0 + 2.0 + 8.0);
    }

    #[test]
    fn ready_times_shift_everything() {
        let p = problem_with_ready(vec![10.0, 0.0]);
        let s = Schedule::from_assignment(vec![0, 0, 1, 1]);
        let obj = evaluate(&p, &s);
        // m0 completions now 11 and 13.
        assert_eq!(obj.makespan, 13.0);
        assert_eq!(obj.flowtime, 11.0 + 13.0 + 2.0 + 8.0);
    }

    #[test]
    fn spt_order_is_used_for_flowtime() {
        let p = problem_with_ready(vec![0.0, 0.0]);
        // Jobs 0 (etc 2) and 3 (etc 5) on machine 0. SPT: finish 2, then 7.
        let s = Schedule::from_assignment(vec![0, 1, 1, 0]);
        let obj = evaluate(&p, &s);
        // m0 flowtime = 2 + 7 = 9 (SPT), not 5 + 7 = 12 (job order).
        // m1: ETCs 8, 2 -> SPT finishes 2, 10.
        assert_eq!(obj.flowtime, 9.0 + 12.0);
        assert_eq!(obj.makespan, 10.0);
    }

    #[test]
    fn single_machine_flowtime_at_least_makespan() {
        let p = problem_with_ready(vec![0.0, 0.0]);
        let s = Schedule::uniform(4, 0);
        let obj = evaluate(&p, &s);
        assert!(obj.flowtime >= obj.makespan);
        assert_eq!(obj.makespan, 2.0 + 1.0 + 3.0 + 5.0);
    }

    #[test]
    fn mean_flowtime_divides() {
        let obj = Objectives {
            makespan: 1.0,
            flowtime: 30.0,
        };
        assert_eq!(obj.mean_flowtime(3), 10.0);
    }

    #[test]
    fn empty_machine_counts_ready_for_makespan() {
        // All jobs on machine 1; machine 0 idle but ready at t=50.
        let p = problem_with_ready(vec![50.0, 0.0]);
        let s = Schedule::uniform(4, 1);
        let obj = evaluate(&p, &s);
        // Idle machine's ready time (50) exceeds m1's completion (20).
        assert_eq!(obj.makespan, 50.0);
    }
}
