//! Range-based generator reproducing the Braun et al. benchmark
//! distributions.
//!
//! The original `u_x_yyzz.k` files shipped with the 2001 JPDC paper are not
//! redistributable here, so this module regenerates instances of the same
//! classes with the published **range-based method**:
//!
//! 1. draw a task vector `B[i] ~ U(1, φ_task)` — one baseline workload per
//!    job;
//! 2. draw every entry as `ETC[i][j] = B[i] · r[i][j]` with
//!    `r[i][j] ~ U(1, φ_mach)`;
//! 3. post-process for consistency: sort each row ascending (consistent) or
//!    sort the even-indexed entries of each row (semi-consistent);
//!    inconsistent instances keep the raw draws.
//!
//! Heterogeneity ranges follow the benchmark: `φ_task = 3000` (hi) / `100`
//! (lo) and `φ_mach = 1000` (hi) / `10` (lo), giving `hihi` entries up to
//! `3·10⁶` time units — the magnitudes visible in the paper's tables.
//!
//! Generation is fully deterministic given `(class, stream)`; see
//! [`InstanceClass::stable_seed`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Consistency, EtcMatrix, GridInstance, Heterogeneity, InstanceClass};

/// Upper bound of the task-baseline range for high job heterogeneity.
pub const PHI_TASK_HI: f64 = 3000.0;
/// Upper bound of the task-baseline range for low job heterogeneity.
pub const PHI_TASK_LO: f64 = 100.0;
/// Upper bound of the machine-multiplier range for high machine heterogeneity.
pub const PHI_MACH_HI: f64 = 1000.0;
/// Upper bound of the machine-multiplier range for low machine heterogeneity.
pub const PHI_MACH_LO: f64 = 10.0;

/// Returns the `(φ_task, φ_mach)` ranges of a class.
#[must_use]
pub fn ranges(class: InstanceClass) -> (f64, f64) {
    let phi_task = match class.job_heterogeneity {
        Heterogeneity::Hi => PHI_TASK_HI,
        Heterogeneity::Lo => PHI_TASK_LO,
    };
    let phi_mach = match class.machine_heterogeneity {
        Heterogeneity::Hi => PHI_MACH_HI,
        Heterogeneity::Lo => PHI_MACH_LO,
    };
    (phi_task, phi_mach)
}

/// Generates the ETC matrix of `class` deterministically.
///
/// `stream` decorrelates repeated draws of the same class (it plays the role
/// of the `.k` replica index at the RNG level; the class's own `index` field
/// already participates in the seed through the label).
#[must_use]
pub fn generate_matrix(class: InstanceClass, stream: u64) -> EtcMatrix {
    let (phi_task, phi_mach) = ranges(class);
    let mut rng = SmallRng::seed_from_u64(class.stable_seed(stream));
    let nb_jobs = class.nb_jobs as usize;
    let nb_machines = class.nb_machines as usize;

    let mut data = Vec::with_capacity(nb_jobs * nb_machines);
    for _ in 0..nb_jobs {
        let baseline: f64 = rng.gen_range(1.0..=phi_task);
        for _ in 0..nb_machines {
            let mult: f64 = rng.gen_range(1.0..=phi_mach);
            data.push(baseline * mult);
        }
    }
    let mut matrix = EtcMatrix::from_rows(nb_jobs, nb_machines, data);
    match class.consistency {
        Consistency::Consistent => matrix.sort_rows(),
        Consistency::SemiConsistent => matrix.sort_even_columns(),
        Consistency::Inconsistent => {}
    }
    matrix
}

/// Generates a full [`GridInstance`] (matrix + zero ready times + label).
///
/// The static benchmark assumes idle machines; dynamic scenarios overwrite
/// the ready times (see `cmags-gridsim`).
#[must_use]
pub fn generate(class: InstanceClass, stream: u64) -> GridInstance {
    GridInstance::new(class.label(), generate_matrix(class, stream))
}

/// Generates the twelve-instance suite of the paper's tables
/// (`u_{c,i,s}_{hihi,hilo,lohi,lolo}.index`).
#[must_use]
pub fn generate_suite(index: u32, stream: u64) -> Vec<GridInstance> {
    InstanceClass::braun_suite(index)
        .into_iter()
        .map(|c| generate(c, stream))
        .collect()
}

/// Generates an instance from explicit job workloads (millions of
/// instructions) and machine capacities (MIPS): `ETC[i][j] = wl[i] / mips[j]`.
///
/// This is the "workload / computing capacity" formulation of the problem
/// statement (paper §2); by construction it yields a *consistent* matrix.
///
/// # Panics
///
/// Panics if any workload or capacity is not strictly positive and finite,
/// or if either slice is empty.
#[must_use]
pub fn from_workloads(name: impl Into<String>, workloads: &[f64], mips: &[f64]) -> GridInstance {
    assert!(
        !workloads.is_empty() && !mips.is_empty(),
        "need at least one job and machine"
    );
    assert!(
        workloads
            .iter()
            .chain(mips)
            .all(|&x| x.is_finite() && x > 0.0),
        "workloads and MIPS must be strictly positive and finite"
    );
    let matrix = EtcMatrix::from_fn(workloads.len(), mips.len(), |i, j| workloads[i] / mips[j]);
    GridInstance::new(name, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(label: &str) -> InstanceClass {
        label.parse().unwrap()
    }

    #[test]
    fn dimensions_match_class() {
        let inst = generate(class("u_i_hilo.0"), 0);
        assert_eq!(inst.nb_jobs(), 512);
        assert_eq!(inst.nb_machines(), 16);
        assert_eq!(inst.name(), "u_i_hilo.0");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_matrix(class("u_c_hihi.0"), 3);
        let b = generate_matrix(class("u_c_hihi.0"), 3);
        assert_eq!(a, b);
        let c = generate_matrix(class("u_c_hihi.0"), 4);
        assert_ne!(a, c, "different streams must decorrelate");
    }

    #[test]
    fn consistent_class_is_consistent() {
        let m = generate_matrix(class("u_c_lolo.0"), 0);
        assert!(m.is_consistent());
    }

    #[test]
    fn semiconsistent_class_has_consistent_even_columns() {
        let m = generate_matrix(class("u_s_hihi.0"), 0);
        assert!(!m.is_consistent());
        assert!(m.even_columns_consistent());
        assert_eq!(m.classify(), Consistency::SemiConsistent);
    }

    #[test]
    fn inconsistent_class_is_inconsistent() {
        let m = generate_matrix(class("u_i_lohi.0"), 0);
        assert_eq!(m.classify(), Consistency::Inconsistent);
    }

    #[test]
    fn entries_respect_ranges() {
        let m = generate_matrix(class("u_i_hihi.0"), 1);
        assert!(m.min_etc() >= 1.0);
        assert!(m.max_etc() <= PHI_TASK_HI * PHI_MACH_HI);

        let m = generate_matrix(class("u_i_lolo.0"), 1);
        assert!(m.max_etc() <= PHI_TASK_LO * PHI_MACH_LO);
    }

    #[test]
    fn hihi_dominates_lolo_in_scale() {
        let hi = generate_matrix(class("u_i_hihi.0"), 0);
        let lo = generate_matrix(class("u_i_lolo.0"), 0);
        assert!(hi.max_etc() > 100.0 * lo.max_etc());
    }

    #[test]
    fn suite_covers_twelve_labels() {
        let suite = generate_suite(0, 0);
        assert_eq!(suite.len(), 12);
        assert_eq!(suite[0].name(), "u_c_hihi.0");
        assert_eq!(suite[11].name(), "u_s_lolo.0");
    }

    #[test]
    fn scaled_dimensions() {
        let c = class("u_c_hihi.0").with_dims(1024, 32);
        let inst = generate(c, 0);
        assert_eq!(inst.nb_jobs(), 1024);
        assert_eq!(inst.nb_machines(), 32);
        assert!(inst.etc().is_consistent());
    }

    #[test]
    fn workload_formulation_is_consistent() {
        let inst = from_workloads("wl", &[100.0, 50.0, 75.0], &[10.0, 2.0, 5.0]);
        assert!(inst.etc().is_consistent());
        assert_eq!(inst.etc().get(0, 0), 10.0);
        assert_eq!(inst.etc().get(1, 1), 25.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn workload_formulation_rejects_zero_mips() {
        let _ = from_workloads("bad", &[1.0], &[0.0]);
    }
}
