//! Cross-crate property tests: operator feasibility and evaluator
//! agreement on arbitrary problems, through the public facade API.

use cmags::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..32, 2usize..8, any::<u64>()).prop_map(|(jobs, machines, seed)| {
        // Random dims, seeded benchmark-style content.
        let class: InstanceClass = "u_i_hihi.0".parse().unwrap();
        let class = class.with_dims(jobs as u32, machines as u32);
        Problem::from_instance(&braun::generate(class, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every constructive heuristic yields a feasible, fully assigned
    /// schedule on arbitrary dimensions.
    #[test]
    fn constructive_heuristics_always_feasible(problem in arb_problem(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for kind in ConstructiveKind::ALL {
            let schedule = kind.build_seeded(&problem, &mut rng);
            prop_assert!(Schedule::try_new(
                schedule.assignment().to_vec(),
                problem.nb_jobs(),
                problem.nb_machines()
            ).is_ok(), "{}", kind.name());
        }
    }

    /// Crossovers of feasible parents stay feasible and only mix parent
    /// genes.
    #[test]
    fn crossovers_mix_without_inventing_genes(
        problem in arb_problem(),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = RandomAssign.build_seeded(&problem, &mut rng);
        let b = RandomAssign.build_seeded(&problem, &mut rng);
        for xo in [Crossover::OnePoint, Crossover::TwoPoint, Crossover::Uniform] {
            let child = xo.apply(&a, &b, &mut rng);
            for (job, machine) in child.iter() {
                prop_assert!(
                    machine == a.machine_of(job) || machine == b.machine_of(job),
                    "{}: job {job} got a gene from neither parent",
                    xo.name()
                );
            }
        }
    }

    /// The cMA's reported objectives always re-evaluate exactly, for any
    /// problem shape and (small) budget.
    #[test]
    fn cma_outcome_reevaluates_exactly(
        problem in arb_problem(),
        seed in any::<u64>(),
        children in 1u64..60,
    ) {
        let outcome = CmaConfig::paper()
            .with_stop(StopCondition::children(children))
            .run(&problem, seed);
        prop_assert_eq!(evaluate(&problem, &outcome.schedule), outcome.objectives);
        // Fitness is exactly the weighted scalarisation.
        prop_assert_eq!(problem.fitness(outcome.objectives), outcome.fitness);
    }

    /// Local search methods never worsen fitness, whatever the problem.
    #[test]
    fn local_search_never_worsens(
        problem in arb_problem(),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let schedule = RandomAssign.build_seeded(&problem, &mut rng);
        for kind in [LocalSearchKind::Lm, LocalSearchKind::Slm, LocalSearchKind::Lmcts] {
            let mut s = schedule.clone();
            let mut eval = EvalState::new(&problem, &s);
            let before = eval.fitness(&problem);
            kind.run(&problem, &mut s, &mut eval, &mut rng, 8);
            prop_assert!(eval.fitness(&problem) <= before + 1e-9, "{}", kind.name());
            prop_assert_eq!(evaluate(&problem, &s), eval.objectives());
        }
    }
}
