//! Allocation accounting for the event hot loop.
//!
//! The simulator's claim is that steady-state event processing is
//! allocation-free: job state lives in an arena, machine state in a
//! slab, and dispatch works out of reusable scratch, so heap traffic
//! scales with *activations* (plus amortised container growth), not
//! with *events*. This test counts allocator calls with a thread-local
//! counting `#[global_allocator]` and quadruples the arrival rate at a
//! fixed activation schedule: events must grow ≈4×, allocator calls
//! must not even double.

// The workspace denies unsafe_code (see [workspace.lints] in the root
// manifest); implementing GlobalAlloc is the one sanctioned exception.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cmags_gridsim::scheduler::HeuristicScheduler;
use cmags_gridsim::{ArrivalProcess, SimConfig, Simulation};
use cmags_heuristics::constructive::ConstructiveKind;

thread_local! {
    /// Allocator calls (alloc + realloc) made by *this* thread. Each
    /// `#[test]` runs on its own thread, so tests never observe each
    /// other's traffic.
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to `System` for every operation; the counter is a
// plain thread-local side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs a calm fixed-pool sim at `rate` jobs/s and returns
/// `(allocator calls during run, events processed)`.
fn measure(rate: f64) -> (u64, u64) {
    let mut config = SimConfig::small();
    config.arrivals = ArrivalProcess::Poisson { rate };
    config.max_events = 10_000_000;
    let sim = Simulation::new(config, 7);
    let mut scheduler = HeuristicScheduler::new(ConstructiveKind::Mct);
    let before = ALLOC_CALLS.with(Cell::get);
    let report = sim.run(&mut scheduler);
    let calls = ALLOC_CALLS.with(Cell::get) - before;
    assert_eq!(report.jobs_completed, report.jobs_submitted);
    (calls, report.events_processed)
}

#[test]
fn hot_loop_allocations_scale_with_activations_not_events() {
    // Warm-up: one run to populate lazily-initialised runtime state
    // (fmt buffers, thread locals) so measurements compare like with
    // like.
    let _ = measure(2e-3);

    let (calls_1x, events_1x) = measure(2e-3);
    let (calls_4x, events_4x) = measure(8e-3);

    assert!(
        events_4x > 3 * events_1x,
        "quadrupling the arrival rate must ~quadruple events \
         (got {events_1x} -> {events_4x})"
    );
    // Allocator traffic is dominated by the fixed activation schedule
    // and amortised container growth; 4x the events must cost well
    // under 2x the allocator calls or the hot loop is allocating per
    // event again.
    assert!(
        calls_4x < 2 * calls_1x,
        "allocator calls must not scale with events: \
         {calls_1x} calls / {events_1x} events at 1x vs \
         {calls_4x} calls / {events_4x} events at 4x"
    );
}

#[test]
fn repeat_runs_do_not_leak_allocation_growth() {
    // Two identical runs after warm-up should cost the same allocator
    // traffic: the simulator owns all its scratch, so nothing persists
    // or accumulates between runs.
    let _ = measure(2e-3);
    let (a, _) = measure(2e-3);
    let (b, _) = measure(2e-3);
    assert_eq!(a, b, "identical runs must make identical allocator calls");
}
