//! The scheduler-facing view of an ETC instance.

use cmags_etc::GridInstance;

use crate::{ticks, FitnessWeights, JobId, MachineId, Objective, Objectives};

/// An immutable, evaluation-optimised view of a scheduling instance.
///
/// Owns a row-major copy of the ETC matrix plus the machine ready times and
/// the fitness weights (Eq. 3), together with a parallel **fixed-point
/// tick** copy of both (see [`crate::ticks`]) that the exact delta
/// evaluator reads on its hot path. `Problem` is cheap to share by
/// reference across threads (`Send + Sync`, no interior mutability); all
/// algorithms in the workspace take `&Problem`.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    name: String,
    nb_jobs: usize,
    nb_machines: usize,
    /// Row-major: `etc[job * nb_machines + machine]`.
    etc: Box<[f64]>,
    ready: Box<[f64]>,
    /// Row-major tick copy of `etc`, quantised once at construction so
    /// every evaluation path reads identical integer inputs.
    etc_ticks: Box<[i64]>,
    ready_ticks: Box<[i64]>,
    weights: FitnessWeights,
    /// Response-blend objective layered over `weights`
    /// ([`Objective::classic`] = the historical behaviour, bit for bit).
    objective: Objective,
}

impl Problem {
    /// Builds a problem from an instance with the paper's λ = 0.75.
    #[must_use]
    pub fn from_instance(instance: &GridInstance) -> Self {
        Self::with_weights(instance, FitnessWeights::default())
    }

    /// Builds a problem with explicit fitness weights.
    #[must_use]
    pub fn with_weights(instance: &GridInstance, weights: FitnessWeights) -> Self {
        let etc: Box<[f64]> = instance.etc().as_slice().into();
        let ready: Box<[f64]> = instance.ready_times().into();
        let etc_ticks = etc.iter().map(|&e| ticks::ticks(e)).collect();
        let ready_ticks = ready.iter().map(|&r| ticks::ticks(r)).collect();
        Self {
            name: instance.name().to_owned(),
            nb_jobs: instance.nb_jobs(),
            nb_machines: instance.nb_machines(),
            etc,
            ready,
            etc_ticks,
            ready_ticks,
            weights,
            objective: Objective::classic(),
        }
    }

    /// Instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of jobs.
    #[inline]
    #[must_use]
    pub fn nb_jobs(&self) -> usize {
        self.nb_jobs
    }

    /// Number of machines.
    #[inline]
    #[must_use]
    pub fn nb_machines(&self) -> usize {
        self.nb_machines
    }

    /// Expected time to compute `job` on `machine`.
    #[inline]
    #[must_use]
    pub fn etc(&self, job: JobId, machine: MachineId) -> f64 {
        debug_assert!((job as usize) < self.nb_jobs && (machine as usize) < self.nb_machines);
        self.etc[job as usize * self.nb_machines + machine as usize]
    }

    /// The ETC row of one job — contiguous, for scanning candidate
    /// machines.
    #[inline]
    #[must_use]
    pub fn etc_row(&self, job: JobId) -> &[f64] {
        let start = job as usize * self.nb_machines;
        &self.etc[start..start + self.nb_machines]
    }

    /// ETC of `job` on `machine` in evaluator ticks.
    #[inline]
    pub(crate) fn etc_ticks(&self, job: JobId, machine: MachineId) -> i64 {
        debug_assert!((job as usize) < self.nb_jobs && (machine as usize) < self.nb_machines);
        self.etc_ticks[job as usize * self.nb_machines + machine as usize]
    }

    /// The tick ETC row of one job — contiguous, for batched scoring.
    #[inline]
    pub(crate) fn etc_ticks_row(&self, job: JobId) -> &[i64] {
        let start = job as usize * self.nb_machines;
        &self.etc_ticks[start..start + self.nb_machines]
    }

    /// Ready time of `machine` in evaluator ticks.
    #[inline]
    pub(crate) fn ready_ticks(&self, machine: MachineId) -> i64 {
        self.ready_ticks[machine as usize]
    }

    /// Ready time of `machine`.
    #[inline]
    #[must_use]
    pub fn ready(&self, machine: MachineId) -> f64 {
        self.ready[machine as usize]
    }

    /// All ready times.
    #[must_use]
    pub fn ready_times(&self) -> &[f64] {
        &self.ready
    }

    /// The fitness weights in effect.
    #[must_use]
    pub fn weights(&self) -> FitnessWeights {
        self.weights
    }

    /// The response-blend objective in effect
    /// ([`Objective::classic`] unless retargeted).
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// A copy of this problem targeting a different response-blend
    /// objective (λ).
    ///
    /// Like [`Problem::reweighted`], only the scalarisation changes: the
    /// raw objectives, schedules and every [`crate::EvalState`] cache
    /// computed against `self` stay valid. `Objective::classic()`
    /// reproduces the historical fitness bit for bit.
    #[must_use]
    pub fn retargeted(&self, objective: Objective) -> Self {
        self.clone().targeting(objective)
    }

    /// The consuming variant of [`Problem::retargeted`] — no copy of the
    /// ETC/tick data, for freshly built per-activation problems.
    #[must_use]
    pub fn targeting(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// A copy of this problem with different fitness weights.
    ///
    /// Objectives are weight-independent, so any algorithm state computed
    /// against `self` (schedules, [`crate::EvalState`] caches) remains
    /// valid for the reweighted problem; only scalarised fitness values
    /// change. Multi-objective engines use this to scalarise local-search
    /// probes under varying λ without re-reading the instance.
    #[must_use]
    pub fn reweighted(&self, weights: FitnessWeights) -> Self {
        Self {
            weights,
            ..self.clone()
        }
    }

    /// Scalarised fitness of a pair of objective values: the classic
    /// Eq.-3 weighting blended by the active response objective λ
    /// (identical to the pure Eq.-3 value when the objective is
    /// classic).
    #[inline]
    #[must_use]
    pub fn fitness(&self, objectives: Objectives) -> f64 {
        self.objective
            .fitness(self.weights, objectives, self.nb_machines)
    }

    /// Mean ETC of a job across machines (workload proxy).
    #[must_use]
    pub fn job_mean_etc(&self, job: JobId) -> f64 {
        let row = self.etc_row(job);
        row.iter().sum::<f64>() / row.len() as f64
    }

    /// Jobs sorted ascending by mean ETC (shortest first). Deterministic:
    /// ties break by job id.
    #[must_use]
    pub fn jobs_by_workload(&self) -> Vec<JobId> {
        let means: Vec<f64> = (0..self.nb_jobs as JobId)
            .map(|j| self.job_mean_etc(j))
            .collect();
        let mut order: Vec<JobId> = (0..self.nb_jobs as JobId).collect();
        order.sort_by(|&a, &b| {
            means[a as usize]
                .total_cmp(&means[b as usize])
                .then(a.cmp(&b))
        });
        order
    }

    /// Machines sorted ascending by mean ETC over all jobs (fastest
    /// first). Deterministic: ties break by machine id.
    #[must_use]
    pub fn machines_by_speed(&self) -> Vec<MachineId> {
        let mut means = vec![0.0f64; self.nb_machines];
        for job in 0..self.nb_jobs {
            let row = &self.etc[job * self.nb_machines..(job + 1) * self.nb_machines];
            for (m, &e) in row.iter().enumerate() {
                means[m] += e;
            }
        }
        let mut order: Vec<MachineId> = (0..self.nb_machines as MachineId).collect();
        order.sort_by(|&a, &b| {
            means[a as usize]
                .total_cmp(&means[b as usize])
                .then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_etc::EtcMatrix;

    fn problem() -> Problem {
        // 3 jobs x 2 machines; machine 0 uniformly faster.
        let etc = EtcMatrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 6.0, 5.0, 10.0]);
        let inst = GridInstance::with_ready_times("p", etc, vec![0.5, 0.0]);
        Problem::from_instance(&inst)
    }

    #[test]
    fn accessors() {
        let p = problem();
        assert_eq!(p.name(), "p");
        assert_eq!(p.nb_jobs(), 3);
        assert_eq!(p.nb_machines(), 2);
        assert_eq!(p.etc(1, 1), 6.0);
        assert_eq!(p.etc_row(2), &[5.0, 10.0]);
        assert_eq!(p.ready(0), 0.5);
        assert_eq!(p.ready_times(), &[0.5, 0.0]);
    }

    #[test]
    fn workload_and_speed_orderings() {
        let p = problem();
        // Mean ETCs: job0=1.5, job1=4.5, job2=7.5 -> ascending already.
        assert_eq!(p.jobs_by_workload(), vec![0, 1, 2]);
        // Machine means: m0=3, m1=6 -> m0 fastest.
        assert_eq!(p.machines_by_speed(), vec![0, 1]);
    }

    #[test]
    fn fitness_uses_weights() {
        let p = problem();
        let obj = Objectives {
            makespan: 10.0,
            flowtime: 40.0,
        };
        // lambda 0.75: 0.75*10 + 0.25*(40/2) = 7.5 + 5 = 12.5
        assert!((p.fitness(obj) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn reweighted_changes_only_the_fitness() {
        let p = problem();
        let q = p.reweighted(FitnessWeights::new(0.25));
        assert_eq!(p.nb_jobs(), q.nb_jobs());
        assert_eq!(p.etc_row(1), q.etc_row(1));
        let obj = Objectives {
            makespan: 10.0,
            flowtime: 40.0,
        };
        // lambda 0.25: 0.25*10 + 0.75*(40/2) = 2.5 + 15 = 17.5
        assert!((q.fitness(obj) - 17.5).abs() < 1e-12);
        assert!((p.fitness(obj) - 12.5).abs() < 1e-12, "original untouched");
    }

    #[test]
    fn retargeted_blends_toward_mean_flowtime() {
        let p = problem();
        let obj = Objectives {
            makespan: 10.0,
            flowtime: 40.0,
        };
        // Classic default: bitwise the pure Eq.-3 value.
        assert_eq!(p.objective(), Objective::classic());
        assert_eq!(
            p.fitness(obj).to_bits(),
            p.weights().fitness(obj, p.nb_machines()).to_bits()
        );
        // λ = 1: pure mean flowtime (40 / 2 machines).
        let response = p.retargeted(Objective::mean_flowtime());
        assert_eq!(response.fitness(obj), 20.0);
        // λ = 0.5: halfway between Eq. 3 (12.5) and mean flowtime (20).
        let half = p.retargeted(Objective::weighted(0.5));
        assert!((half.fitness(obj) - 16.25).abs() < 1e-12);
        // Instance data untouched.
        assert_eq!(p.etc_row(1), response.etc_row(1));
        assert_eq!(p.fitness(obj), 12.5, "original untouched");
    }

    #[test]
    fn orderings_are_deterministic_under_ties() {
        let etc = EtcMatrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let p = Problem::from_instance(&GridInstance::new("tie", etc));
        assert_eq!(p.jobs_by_workload(), vec![0, 1]);
        assert_eq!(p.machines_by_speed(), vec![0, 1]);
    }
}
