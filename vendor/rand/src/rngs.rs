//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++ (Blackman &
/// Vigna, 2019), matching the role `SmallRng` plays in the real `rand`
/// crate (the streams differ — see the crate docs).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state; expand a fixed
        // non-zero constant instead (mirrors what upstream does).
        if s == [0; 4] {
            let mut sm = crate::SplitMix64::new(0x005E_ED0F_5EED_0F5E);
            for word in &mut s {
                *word = sm.next_u64();
            }
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0, "all-zero xoshiro state would be stuck");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
