//! Nonparametric statistics for algorithm comparison.
//!
//! The paper reports best-of-10 values and a ≈1 % standard deviation as
//! its robustness argument (§5.1). A credible reproduction should also
//! say whether observed differences between algorithms are larger than
//! run-to-run noise, so this module implements the two tools standard
//! in metaheuristics methodology:
//!
//! * the **Mann-Whitney U test** (a.k.a. Wilcoxon rank-sum), with
//!   mid-rank tie handling, tie-corrected normal approximation and
//!   continuity correction — the distribution-free two-sample test;
//! * the **Vargha-Delaney Â₁₂ effect size** — the probability that a
//!   random run of A beats a random run of B (0.5 = no effect; the
//!   conventional thresholds are 0.56 / 0.64 / 0.71 for
//!   small / medium / large).
//!
//! Everything is hand-rolled on purpose: no statistics crate is in the
//! approved dependency set, and both procedures are a page of code.

/// Result of a two-sample Mann-Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standard-normal z value (tie-corrected, continuity-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation. Conservative
    /// (1.0) for degenerate inputs (all values tied).
    pub p_two_sided: f64,
}

impl MannWhitney {
    /// Whether the difference is significant at level `alpha`.
    #[must_use]
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Runs the Mann-Whitney U test on two samples.
///
/// Uses mid-ranks for ties, the tie-corrected variance and a 0.5
/// continuity correction; the normal approximation is accurate for
/// sample sizes ≥ 8, which every harness run satisfies (and remains a
/// sane, conservative estimate below that).
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
#[must_use]
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MannWhitney {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "mann-whitney needs non-empty samples"
    );
    assert!(
        a.iter().chain(b).all(|v| !v.is_nan()),
        "mann-whitney samples must not contain NaN"
    );
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let n = na + nb;

    // Joint mid-ranks.
    let mut joint: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    joint.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut rank_sum_a = 0.0f64;
    let mut tie_term = 0.0f64; // Σ (t³ - t) over tie groups
    let mut i = 0;
    while i < joint.len() {
        let mut j = i;
        while j < joint.len() && joint[j].0 == joint[i].0 {
            j += 1;
        }
        let group = (j - i) as f64;
        // Mid-rank of the tie group [i, j): average of 1-based ranks.
        let mid_rank = (i + 1 + j) as f64 / 2.0;
        for entry in &joint[i..j] {
            if entry.1 == 0 {
                rank_sum_a += mid_rank;
            }
        }
        tie_term += group * group * group - group;
        i = j;
    }

    let u_a = rank_sum_a - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    let variance = na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if variance <= 0.0 {
        // Every observation tied: no evidence of any difference.
        return MannWhitney {
            u: u_a,
            z: 0.0,
            p_two_sided: 1.0,
        };
    }
    // Continuity correction toward the mean.
    let diff = u_a - mean_u;
    let corrected = diff.abs() - 0.5;
    let z = if corrected <= 0.0 {
        0.0
    } else {
        corrected / variance.sqrt() * diff.signum()
    };
    let p = (2.0 * normal_sf(z.abs())).min(1.0);
    MannWhitney {
        u: u_a,
        z,
        p_two_sided: p,
    }
}

/// Vargha-Delaney Â₁₂: the probability that a random value of `a` is
/// **smaller** than a random value of `b` (ties count half). For
/// minimisation objectives, Â₁₂ > 0.5 means `a` tends to win.
///
/// # Panics
///
/// Panics if either sample is empty.
#[must_use]
pub fn vargha_delaney_a12(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "A12 needs non-empty samples"
    );
    let mut favourable = 0.0f64;
    for &x in a {
        for &y in b {
            if x < y {
                favourable += 1.0;
            } else if x == y {
                favourable += 0.5;
            }
        }
    }
    favourable / (a.len() * b.len()) as f64
}

/// Magnitude label for an Â₁₂ effect size (Vargha & Delaney's
/// conventional thresholds on `|A12 - 0.5|`).
#[must_use]
pub fn a12_magnitude(a12: f64) -> &'static str {
    let d = (a12 - 0.5).abs();
    if d < 0.06 {
        "negligible"
    } else if d < 0.14 {
        "small"
    } else if d < 0.21 {
        "medium"
    } else {
        "large"
    }
}

/// Standard normal survival function `P(Z > z)` via the Abramowitz &
/// Stegun 7.1.26 erf polynomial (|error| < 1.5e-7, far below the
/// precision any p-value here needs).
#[must_use]
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let sign_flip = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erfc = poly * (-x * x).exp();
    if sign_flip {
        2.0 - erfc
    } else {
        erfc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_sf_known_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.959_964) - 0.025).abs() < 1e-4);
        assert!((normal_sf(-1.959_964) - 0.975).abs() < 1e-4);
        assert!(normal_sf(6.0) < 1e-8);
    }

    #[test]
    fn u_statistic_on_textbook_example() {
        // Complete separation: every a below every b.
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0, 13.0];
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.u, 0.0, "no b value below any a value");
        // Symmetric case.
        let r2 = mann_whitney_u(&b, &a);
        assert_eq!(r2.u, 12.0, "U_b = n_a * n_b - U_a");
        assert!(
            (r.p_two_sided - r2.p_two_sided).abs() < 1e-12,
            "two-sided is symmetric"
        );
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [5.0, 5.0, 5.0, 5.0];
        let r = mann_whitney_u(&a, &a);
        assert_eq!(r.p_two_sided, 1.0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let a: Vec<f64> = (0..12).map(|i| 10.0 + f64::from(i)).collect();
        let b: Vec<f64> = (0..12).map(|i| 100.0 + f64::from(i)).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.significant(0.01), "p = {}", r.p_two_sided);
        assert!(r.z < 0.0, "a ranks below b");
    }

    #[test]
    fn overlapping_samples_are_not_significant() {
        let a = [10.0, 12.0, 11.0, 13.0, 12.5, 11.5];
        let b = [10.5, 12.2, 11.1, 12.9, 12.4, 11.6];
        let r = mann_whitney_u(&a, &b);
        assert!(!r.significant(0.05), "p = {}", r.p_two_sided);
    }

    #[test]
    fn ties_use_mid_ranks() {
        // With heavy ties the statistic must stay finite and symmetric.
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 2.0, 3.0, 4.0];
        let r_ab = mann_whitney_u(&a, &b);
        let r_ba = mann_whitney_u(&b, &a);
        assert!(
            (r_ab.u + r_ba.u - 16.0).abs() < 1e-12,
            "U_a + U_b = n_a·n_b"
        );
        assert!(r_ab.p_two_sided > 0.0 && r_ab.p_two_sided <= 1.0);
    }

    #[test]
    fn a12_probability_interpretation() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(vargha_delaney_a12(&a, &b), 1.0, "a always smaller");
        assert_eq!(vargha_delaney_a12(&b, &a), 0.0);
        assert_eq!(vargha_delaney_a12(&a, &a), 0.5, "ties count half");
    }

    #[test]
    fn a12_magnitude_thresholds() {
        assert_eq!(a12_magnitude(0.5), "negligible");
        assert_eq!(a12_magnitude(0.58), "small");
        assert_eq!(a12_magnitude(0.66), "medium");
        assert_eq!(a12_magnitude(0.95), "large");
        assert_eq!(a12_magnitude(0.05), "large", "symmetric below 0.5");
    }

    #[test]
    #[should_panic(expected = "non-empty samples")]
    fn empty_sample_rejected() {
        let _ = mann_whitney_u(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_rejected() {
        let _ = mann_whitney_u(&[f64::NAN], &[1.0]);
    }
}
