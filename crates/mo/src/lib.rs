//! # cmags-mo — dominance-based multi-objective scheduling
//!
//! The reproduced paper optimises `λ·makespan + (1-λ)·mean_flowtime`
//! with a fixed λ = 0.75 and explicitly defers "a multi-objective
//! algorithm in order to find a set of non-dominated solutions" to
//! future work (§6). This crate is that extension, built on the same
//! substrates (ETC instances, incremental evaluation, the cellular
//! topology and operators of `cmags-cma`):
//!
//! * [`dominance`], [`ranking`], [`crowding`] — the Pareto machinery
//!   (strict dominance, fast non-dominated sorting, crowding distance);
//! * [`archive`] — a bounded external archive with crowding truncation;
//! * [`mocell`] — a **cellular multi-objective memetic algorithm**
//!   (MOCell-style, after the cellular-EA line of the paper's authors):
//!   toroidal grid, neighbourhood breeding, dominance-first replacement,
//!   archive feedback, and λ-ladder-guided local search;
//! * [`nsga2`] — a panmictic NSGA-II baseline isolating the effect of
//!   the cellular structure;
//! * [`indicators`] — hypervolume, additive ε, spread and IGD for
//!   comparing the resulting fronts (and the λ-scan front of
//!   `cmags_cma::pareto`).
//!
//! ## Example
//!
//! ```
//! use cmags_mo::{MoCellConfig, indicators};
//! use cmags_cma::StopCondition;
//! use cmags_core::Problem;
//! use cmags_etc::braun;
//!
//! let class: cmags_etc::InstanceClass = "u_c_hihi.0".parse().unwrap();
//! let instance = braun::generate(class.with_dims(64, 8), 0);
//! let problem = Problem::from_instance(&instance);
//! let outcome = MoCellConfig::suggested()
//!     .with_stop(StopCondition::children(300))
//!     .run(&problem, 42);
//! assert!(!outcome.front().is_empty());
//! let hv = indicators::hypervolume(&outcome.archive.objectives(), outcome.reference);
//! assert!(hv > 0.0);
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod crowding;
pub mod dominance;
pub mod indicators;
pub mod mocell;
pub mod nsga2;
pub mod ranking;

pub use archive::{CrowdingArchive, MoSolution};
pub use dominance::{compare, dominates, weakly_dominates, ParetoOrdering};
pub use mocell::{HvSample, MoCellConfig, MoCellEngine, MoCellOutcome, MoIndividual};
pub use nsga2::{Nsga2Config, Nsga2Engine, Nsga2Outcome};
