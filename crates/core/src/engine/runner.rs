//! The unified run loop.

use std::time::{Duration, Instant};

use crate::engine::observer::{Observer, Snapshot, TraceSink};
use crate::engine::{Metaheuristic, StopCondition, TracePoint};

/// Counters of one finished run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Engine-defined outer iterations completed.
    pub iterations: u64,
    /// Children generated.
    pub children: u64,
    /// Wall-clock duration (from the instant passed to
    /// [`Runner::run_from`], i.e. including engine initialisation when
    /// the caller timestamps before construction).
    pub elapsed: Duration,
}

/// Drives any [`Metaheuristic`] under a [`StopCondition`], notifying
/// observers of start, improvements and finish.
///
/// The condition is evaluated **before every step**, so deterministic
/// budgets are exact: a `children(10)` budget yields exactly ten
/// children even when an engine's own iteration spans dozens.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    stop: StopCondition,
}

impl Runner {
    /// Builds a runner with the given budget.
    ///
    /// # Panics
    ///
    /// Panics when `stop` has no bound configured (the run would never
    /// terminate).
    #[must_use]
    pub fn new(stop: StopCondition) -> Self {
        assert!(
            stop.is_bounded(),
            "unbounded run: configure a stopping condition"
        );
        Self { stop }
    }

    /// The configured budget.
    #[must_use]
    pub fn stop_condition(&self) -> StopCondition {
        self.stop
    }

    /// Runs `engine` to exhaustion of the budget, timing from now.
    pub fn run(
        &self,
        engine: &mut dyn Metaheuristic,
        observers: &mut [&mut dyn Observer],
    ) -> RunStats {
        // lint:allow(no-wall-clock-in-sim): legit run-elapsed anchor — RunStats.elapsed and Snapshot.elapsed are informational-only (MetricsSink never records them); exact budgets come from iteration/children counters, not this read.
        self.run_from(Instant::now(), engine, observers)
    }

    /// Runs `engine`, measuring elapsed time from `start` — pass the
    /// instant captured *before* engine construction so wall-clock
    /// budgets and trace timestamps include initialisation (seeding,
    /// initial local search), as the paper's 90 s protocol does.
    pub fn run_from(
        &self,
        start: Instant,
        engine: &mut dyn Metaheuristic,
        observers: &mut [&mut dyn Observer],
    ) -> RunStats {
        let snapshot = |engine: &dyn Metaheuristic| Snapshot {
            elapsed: start.elapsed(),
            iterations: engine.iterations(),
            children: engine.children(),
            fitness: engine.best_fitness(),
            objectives: engine.best_objectives(),
        };

        let mut best = engine.best_fitness();
        let mut iterations = engine.iterations();
        let started = snapshot(engine);
        for observer in observers.iter_mut() {
            observer.on_start(&started);
            observer.on_iteration(&started, engine);
        }

        while !self.stop.should_stop(
            start.elapsed(),
            engine.iterations(),
            engine.children(),
            engine.best_fitness(),
        ) {
            engine.step();
            let fitness = engine.best_fitness();
            if fitness < best {
                best = fitness;
                let improved = snapshot(engine);
                for observer in observers.iter_mut() {
                    observer.on_improvement(&improved);
                }
            }
            if engine.iterations() > iterations {
                iterations = engine.iterations();
                if observers.is_empty() {
                    continue;
                }
                let completed = snapshot(engine);
                for observer in observers.iter_mut() {
                    observer.on_iteration(&completed, engine);
                }
            }
        }

        let finished = snapshot(engine);
        for observer in observers.iter_mut() {
            observer.on_finish(&finished);
        }
        RunStats {
            iterations: engine.iterations(),
            children: engine.children(),
            elapsed: start.elapsed(),
        }
    }

    /// Convenience: runs with a single [`TraceSink`] and returns the
    /// recorded best-so-far trace alongside the stats.
    pub fn run_traced(&self, engine: &mut dyn Metaheuristic) -> (RunStats, Vec<TracePoint>) {
        // lint:allow(no-wall-clock-in-sim): legit trace-timestamp anchor — TracePoint.elapsed_ms is informational-only; determinism tests compare TracePoint::key(), which excludes it.
        self.run_traced_from(Instant::now(), engine)
    }

    /// [`Runner::run_traced`] with an explicit start instant (see
    /// [`Runner::run_from`]).
    pub fn run_traced_from(
        &self,
        start: Instant,
        engine: &mut dyn Metaheuristic,
    ) -> (RunStats, Vec<TracePoint>) {
        let mut sink = TraceSink::new();
        let stats = self.run_from(start, engine, &mut [&mut sink]);
        (stats, sink.into_points())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objectives;

    /// Counts down from `value`; improves every other step.
    struct Countdown {
        value: u64,
        steps: u64,
    }

    impl Metaheuristic for Countdown {
        fn name(&self) -> &'static str {
            "countdown"
        }

        fn step(&mut self) {
            self.steps += 1;
            if self.steps.is_multiple_of(2) {
                self.value -= 1;
            }
        }

        fn iterations(&self) -> u64 {
            self.steps / 4
        }

        fn children(&self) -> u64 {
            self.steps
        }

        fn best_fitness(&self) -> f64 {
            self.value as f64
        }

        fn best_objectives(&self) -> Objectives {
            Objectives {
                makespan: self.value as f64,
                flowtime: self.value as f64,
            }
        }
    }

    #[test]
    fn children_budget_is_exact() {
        let mut engine = Countdown {
            value: 100,
            steps: 0,
        };
        let stats = Runner::new(StopCondition::children(7)).run(&mut engine, &mut []);
        assert_eq!(stats.children, 7);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn iteration_budget_counts_engine_iterations() {
        let mut engine = Countdown {
            value: 100,
            steps: 0,
        };
        let stats = Runner::new(StopCondition::iterations(3)).run(&mut engine, &mut []);
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.children, 12, "4 steps per engine iteration");
    }

    #[test]
    fn target_fitness_met_at_init_runs_zero_steps() {
        let mut engine = Countdown { value: 5, steps: 0 };
        let stats = Runner::new(StopCondition::iterations(100).and_target_fitness(10.0))
            .run(&mut engine, &mut []);
        assert_eq!(stats.children, 0);
    }

    #[test]
    fn trace_has_start_improvements_finish() {
        let mut engine = Countdown {
            value: 100,
            steps: 0,
        };
        let (stats, trace) = Runner::new(StopCondition::children(6)).run_traced(&mut engine);
        assert_eq!(stats.children, 6);
        // Start + improvements at steps 2, 4, 6 + finish.
        assert_eq!(trace.len(), 5);
        assert!(trace.windows(2).all(|w| w[1].fitness <= w[0].fitness));
        assert!(trace.windows(2).all(|w| w[1].elapsed_ms >= w[0].elapsed_ms));
    }

    #[test]
    #[should_panic(expected = "unbounded run")]
    fn unbounded_runner_rejected() {
        let _ = Runner::new(StopCondition::default());
    }
}
