//! DYN: the dynamic-scheduler experiment (paper §1/§6 claim).
//!
//! Runs the discrete-event simulator with the cMA in periodic batch mode
//! against the racing portfolio and the fast constructive baselines,
//! sweeping the whole [`ScenarioFamily`] catalog (calm, churny, bursty,
//! diurnal, flash-crowd, degrading, volatile) — or the `--families`
//! subset.

use cmags_cma::StopCondition;
use cmags_gridsim::scheduler::{
    BatchScheduler, CmaScheduler, HeuristicScheduler, PortfolioScheduler, RandomScheduler,
};
use cmags_gridsim::{ScenarioFamily, SimConfig, Simulation};
use cmags_heuristics::constructive::ConstructiveKind;

use crate::args::Ctx;
use crate::report::{fmt_value, Table};

/// Builds the scheduler roster shared by the experiment tables and the
/// [`scenario_sweep`]. The racing portfolio gets the same
/// per-activation budget as the cMA — children split across its
/// contenders, time/target bounds capping the whole race — so the
/// comparison is equal-effort on every axis.
fn roster(budget: StopCondition) -> Vec<Box<dyn BatchScheduler>> {
    vec![
        Box::new(CmaScheduler::new(budget)),
        Box::new(PortfolioScheduler::new(budget)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::MinMin)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::Mct)),
        Box::new(HeuristicScheduler::new(ConstructiveKind::Olb)),
        Box::new(RandomScheduler),
    ]
}

/// Runs one scenario for every scheduler and tabulates the realized
/// metrics.
#[must_use]
pub fn scenario_table(
    title: &str,
    config: &SimConfig,
    seed: u64,
    cma_budget: StopCondition,
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "Scheduler",
            "jobs",
            "resub",
            "makespan",
            "mean response",
            "mean wait",
            "util %",
            "activations",
            "sched wall s",
        ],
    );
    for mut scheduler in roster(cma_budget) {
        let report = Simulation::new(config.clone(), seed).run(scheduler.as_mut());
        table.push_row(vec![
            report.scheduler.clone(),
            report.jobs_completed.to_string(),
            report.resubmissions.to_string(),
            fmt_value(report.realized_makespan),
            fmt_value(report.mean_response()),
            fmt_value(report.mean_wait()),
            format!("{:.1}", report.utilization() * 100.0),
            report.activations.to_string(),
            format!("{:.3}", report.scheduler_wall_s),
        ]);
    }
    table
}

/// The full dynamic experiment: one table per scenario family in the
/// context's sweep (default: the whole catalog).
#[must_use]
pub fn dynamic(ctx: &Ctx) -> Vec<Table> {
    // Scale the per-activation cMA budget off the context: the dynamic
    // claim is about *short* activations.
    let budget = StopCondition::children(2_000).and_time(
        ctx.stop
            .time_limit
            .unwrap_or_else(|| std::time::Duration::from_millis(500)),
    );
    ctx.families
        .iter()
        .map(|&family| {
            scenario_table(
                &format!("Dynamic grid {family} scenario"),
                &SimConfig::from_family(family),
                ctx.seed,
                budget,
            )
        })
        .collect()
}

/// One `(family, scheduler)` cell of the scenario sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Scenario family of the run.
    pub family: ScenarioFamily,
    /// Scheduler name.
    pub scheduler: String,
    /// Mean response time per completed job.
    pub mean_response: f64,
    /// Completion time of the last job.
    pub realized_makespan: f64,
}

/// Sweeps every `(family, scheduler)` cell at one seed — the quality
/// comparison behind `BENCH_scenarios.json`.
///
/// # Panics
///
/// Panics if any simulation fails to complete every submitted job.
#[must_use]
pub fn scenario_sweep(
    families: &[ScenarioFamily],
    seed: u64,
    budget: StopCondition,
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &family in families {
        for mut scheduler in roster(budget) {
            let config = SimConfig::from_family(family);
            let report = Simulation::new(config, seed).run(scheduler.as_mut());
            assert_eq!(
                report.jobs_completed, report.jobs_submitted,
                "{family}/{}: simulation lost jobs",
                report.scheduler
            );
            cells.push(SweepCell {
                family,
                mean_response: report.mean_response(),
                realized_makespan: report.realized_makespan,
                scheduler: report.scheduler,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::super::test_ctx;
    use super::*;

    #[test]
    fn calm_scenario_ranks_cma_over_random() {
        let t = scenario_table(
            "test calm",
            &SimConfig::small(),
            3,
            StopCondition::children(300),
        );
        assert_eq!(t.rows.len(), 6);
        let response_of = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))[4]
                .parse()
                .unwrap()
        };
        assert!(
            response_of("cMA") < response_of("Random"),
            "cMA must beat random dispatch on mean response"
        );
        assert!(
            response_of("Portfolio") < response_of("Random"),
            "the racing portfolio must beat random dispatch too"
        );
    }

    #[test]
    fn dynamic_produces_one_table_per_family() {
        let mut ctx = test_ctx(32, 4, 1, 100);
        ctx.families = vec![ScenarioFamily::Calm, ScenarioFamily::Bursty];
        let tables = dynamic(&ctx);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("calm"));
        assert!(tables[1].title.contains("bursty"));
        for t in &tables {
            // Every scheduler finished every job.
            for row in &t.rows {
                let jobs: u64 = row[1].parse().unwrap();
                assert!(jobs > 0);
            }
        }
    }

    #[test]
    fn scenario_sweep_covers_every_cell() {
        let families = [ScenarioFamily::Calm, ScenarioFamily::FlashCrowd];
        let cells = scenario_sweep(&families, 3, StopCondition::children(150));
        let per_family = roster(StopCondition::children(150)).len();
        assert_eq!(cells.len(), families.len() * per_family);
        for cell in &cells {
            assert!(families.contains(&cell.family));
            assert!(!cell.scheduler.is_empty());
            assert!(
                cell.mean_response > 0.0 && cell.realized_makespan > 0.0,
                "{}/{}",
                cell.family,
                cell.scheduler
            );
        }
    }
}
