//! Collection strategies.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec`]: an exact size or a half-open
/// range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec length range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..200 {
            assert_eq!(vec(0u32..5, 7usize).generate(&mut rng).len(), 7);
            let v = vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
