//! Quickstart: schedule one benchmark instance with the paper's tuned
//! cMA and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cmags::prelude::*;

fn main() {
    // 1. A workload: regenerate an instance of the same class as the
    //    benchmark's u_c_hihi.0 (512 jobs, 16 machines, consistent,
    //    high/high heterogeneity).
    let class: InstanceClass = "u_c_hihi.0".parse().expect("valid label");
    let instance = braun::generate(class, 0);
    let problem = Problem::from_instance(&instance);
    println!(
        "instance {}: {} jobs x {} machines",
        instance.name(),
        problem.nb_jobs(),
        problem.nb_machines()
    );

    // 2. Baselines: what the classic one-pass heuristics achieve.
    for kind in [
        ConstructiveKind::LjfrSjfr,
        ConstructiveKind::MinMin,
        ConstructiveKind::Mct,
    ] {
        let schedule = kind.build_seeded(&problem, &mut rand::thread_rng());
        let objectives = evaluate(&problem, &schedule);
        println!(
            "{:<10} makespan {:>14.1}   flowtime {:>16.1}",
            kind.name(),
            objectives.makespan,
            objectives.flowtime
        );
    }

    // 3. The paper's cMA, budgeted at one second of wall clock.
    let config =
        CmaConfig::paper().with_stop(StopCondition::time(std::time::Duration::from_secs(1)));
    let outcome = config.run(&problem, 42);
    println!(
        "{:<10} makespan {:>14.1}   flowtime {:>16.1}   ({} children, {} iterations, {:?})",
        "cMA",
        outcome.objectives.makespan,
        outcome.objectives.flowtime,
        outcome.children,
        outcome.iterations,
        outcome.elapsed
    );

    // 4. The convergence trace is available for plotting.
    println!("improvements recorded: {}", outcome.trace.len());
    if let Some(last) = outcome.trace.last() {
        println!(
            "final point: t = {:.0} ms, makespan = {:.1}, fitness = {:.1}",
            last.elapsed_ms, last.makespan, last.fitness
        );
    }
}
