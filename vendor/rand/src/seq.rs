//! Sequence utilities.

use crate::distributions::uniform::below_u64;
use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_moves_things() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "overwhelmingly likely");
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
