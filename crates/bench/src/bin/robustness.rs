//! Regenerates the §5.1 robustness study.

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::robustness::robustness;
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    emit(&ctx, &[robustness(&ctx)]);
}
