//! The cMA engine — the paper's Algorithm 1 on the shared engine
//! runtime.
//!
//! ```text
//! Initialize the mesh of n individuals P(t=0);
//! Initialize permutations rec_order and mut_order;
//! For each i ∈ P, LocalSearch(i); Evaluate(P);
//! while not stopping condition do
//!     for j = 1 … #recombinations do
//!         SelectToRecombine S ⊆ N_P[rec_order.current];
//!         i' = Recombine(S);
//!         LocalSearch(i'); Evaluate(i');
//!         Replace P[rec_order.current] by i' (if better);
//!         rec_order.next();
//!     for j = 1 … #mutations do
//!         i = P[mut_order.current()];
//!         i' = Mutate(i);
//!         LocalSearch(i'); Evaluate(i');
//!         Replace P[mut_order.current] by i' (if better);
//!         mut_order.next();
//!     Update rec_order and mut_order;
//! ```
//!
//! [`CmaEngine`] is a resumable state machine: each
//! [`Metaheuristic::step`] generates and integrates **one child**, and
//! the pass/iteration structure above is engine-internal bookkeeping.
//! The budget, stop conditions and trace recording live in the shared
//! [`cmags_core::engine::Runner`].
//!
//! ## Update policies and parallelism
//!
//! * [`UpdatePolicy::Asynchronous`] (the paper's choice) integrates each
//!   child immediately — later cells in the same sweep see earlier
//!   replacements. Inherently sequential; one shared RNG stream.
//! * [`UpdatePolicy::Synchronous`] freezes the mesh for a whole operator
//!   pass: every child of the pass is generated against the same
//!   population snapshot into a double buffer committed at the pass
//!   boundary (last writer per cell wins). Each pass slot draws from its
//!   **own RNG stream** split deterministically from the master seed, so
//!   the pass can be computed by any number of worker threads
//!   ([`CmaConfig::threads`]) with bit-identical results — including
//!   `threads == 1`.
//!
//! Two template details deserve a note (`DESIGN.md` §2): the paper's
//! pseudo-code writes `Replace P[rec_order.current]` inside the
//! *mutation* loop and advances `rec_order` there; we treat both as
//! typos for `mut_order` — mutating cell X and replacing cell Y would
//! make the mutation pass incoherent. And `SelectToRecombine` returns
//! `nb_to_recombine` tournament winners, of which the **two fittest**
//! feed the (binary) one-point recombination.

use std::collections::VecDeque;
use std::time::Instant;

use cmags_core::diversity::{self, DiversityPoint, DiversitySample};
use cmags_core::engine::{DiversitySink, Metaheuristic, RunStats, Runner, TracePoint, TraceSink};
use cmags_core::{EvalState, Objectives, Problem, Schedule};
use cmags_heuristics::perturb;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::{CmaConfig, UpdatePolicy};
use crate::topology::Torus;

/// One cell of the population: a schedule with its evaluation caches.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The chromosome.
    pub schedule: Schedule,
    /// Incremental evaluator, kept in lockstep with `schedule`.
    pub eval: EvalState,
    /// Cached scalarised fitness (lower is better).
    pub fitness: f64,
}

impl Individual {
    /// Evaluates `schedule` from scratch.
    #[must_use]
    pub fn new(problem: &Problem, schedule: Schedule) -> Self {
        let eval = EvalState::new(problem, &schedule);
        let fitness = eval.fitness(problem);
        Self {
            schedule,
            eval,
            fitness,
        }
    }

    /// Re-derives the cached fitness from the evaluator (after in-place
    /// mutation or local search).
    pub fn refresh_fitness(&mut self, problem: &Problem) {
        self.fitness = self.eval.fitness(problem);
    }

    /// The objective pair of this individual.
    #[must_use]
    pub fn objectives(&self) -> Objectives {
        self.eval.objectives()
    }
}

/// Result of one cMA run.
#[derive(Debug, Clone)]
pub struct CmaOutcome {
    /// Best schedule found.
    pub schedule: Schedule,
    /// Its objective values.
    pub objectives: Objectives,
    /// Its scalarised fitness.
    pub fitness: f64,
    /// Outer iterations completed.
    pub iterations: u64,
    /// Children generated (operator applications).
    pub children: u64,
    /// Children that replaced their cell.
    pub accepted: u64,
    /// Local-search steps that improved an offspring.
    pub ls_improvements: u64,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// RNG seed of the run.
    pub seed: u64,
    /// Best-so-far samples (one per improvement + start and end).
    pub trace: Vec<TracePoint>,
    /// Per-iteration population diversity samples (assignment entropy +
    /// fitness spread) — the observable behind the paper's claim that
    /// cellular populations sustain diversity.
    pub diversity: Vec<DiversityPoint>,
}

/// Which operator pass the engine is inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Recombination,
    Mutation,
}

/// A child generated ahead of integration (synchronous mode).
struct PassChild {
    cell: usize,
    child: Individual,
    ls_improvements: u64,
}

/// The cellular memetic algorithm as a step-driven [`Metaheuristic`].
pub struct CmaEngine<'a> {
    problem: &'a Problem,
    config: &'a CmaConfig,
    torus: Torus,
    rng: SmallRng,
    seed: u64,
    population: Vec<Individual>,
    rec_order: crate::sweep::SweepState,
    mut_order: crate::sweep::SweepState,
    phase: Phase,
    /// Children integrated in the current pass.
    pass_done: usize,
    /// Double buffer of the synchronous policy.
    pending: Vec<Option<Individual>>,
    /// Remaining `(cell, stream seed)` slots of the current pass, drawn
    /// up-front at the pass boundary (synchronous mode).
    pass_queue: VecDeque<(usize, u64)>,
    /// Children generated but not yet integrated (synchronous mode).
    precomputed: VecDeque<PassChild>,
    /// Per-slot RNG stream counter (synchronous mode) — advanced
    /// identically whatever the thread count.
    stream_counter: u64,
    iterations: u64,
    children: u64,
    accepted: u64,
    ls_improvements: u64,
    best: Individual,
    /// Scratch buffers of the asynchronous path.
    neighbors: Vec<usize>,
    parents: Vec<usize>,
}

impl<'a> CmaEngine<'a> {
    /// Initialises the mesh: heuristic seed + large perturbations, every
    /// individual improved by the configured local search (the template's
    /// first three lines).
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid configurations (see
    /// [`CmaConfig::validate`]).
    #[must_use]
    pub fn new(config: &'a CmaConfig, problem: &'a Problem, seed: u64) -> Self {
        config.validate();
        let mut rng = SmallRng::seed_from_u64(seed);
        let torus = Torus::new(config.pop_height, config.pop_width);

        // --- Initialize the mesh of n individuals P(t=0). ---
        // Individual 0 comes from the seeding heuristic; the rest are
        // large perturbations of it (paper §3.2).
        let seed_schedule = config.seeding.build_seeded(problem, &mut rng);
        let mut population = Vec::with_capacity(torus.len());
        population.push(Individual::new(problem, seed_schedule.clone()));
        for _ in 1..torus.len() {
            let perturbed = perturb(problem, &seed_schedule, config.perturb_strength, &mut rng);
            population.push(Individual::new(problem, perturbed));
        }

        // --- For each i ∈ P, LocalSearch(i); Evaluate(P). ---
        let mut ls_improvements = 0u64;
        for individual in &mut population {
            ls_improvements += config.local_search.run(
                problem,
                &mut individual.schedule,
                &mut individual.eval,
                &mut rng,
                config.ls_iterations,
            ) as u64;
            individual.refresh_fitness(problem);
        }
        let best = best_of_population(&population).clone();

        // --- Initialize permutations rec_order and mut_order. ---
        let rec_order = crate::sweep::SweepState::new(config.rec_order, torus.len(), &mut rng);
        let mut_order = crate::sweep::SweepState::new(config.mut_order, torus.len(), &mut rng);

        let mut engine = Self {
            problem,
            config,
            torus,
            rng,
            seed,
            pending: vec![None; population.len()],
            pass_queue: VecDeque::new(),
            precomputed: VecDeque::new(),
            stream_counter: 0,
            population,
            rec_order,
            mut_order,
            phase: Phase::Recombination,
            pass_done: 0,
            iterations: 0,
            children: 0,
            accepted: 0,
            ls_improvements,
            best,
            neighbors: Vec::new(),
            parents: Vec::new(),
        };
        engine.skip_empty_passes();
        engine
    }

    /// The RNG seed of this run.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Children that replaced their cell so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Consumes the engine into the classic outcome report. `diversity`
    /// is the per-iteration series a [`DiversitySink`] recorded while
    /// the runner drove this engine.
    #[must_use]
    pub fn into_outcome(
        self,
        stats: RunStats,
        trace: Vec<TracePoint>,
        diversity: Vec<DiversityPoint>,
    ) -> CmaOutcome {
        CmaOutcome {
            objectives: self.best.objectives(),
            fitness: self.best.fitness,
            schedule: self.best.schedule,
            iterations: stats.iterations,
            children: stats.children,
            accepted: self.accepted,
            ls_improvements: self.ls_improvements,
            elapsed: stats.elapsed,
            seed: self.seed,
            trace,
            diversity,
        }
    }

    fn current_pass_len(&self) -> usize {
        match self.phase {
            Phase::Recombination => self.config.nb_recombinations,
            Phase::Mutation => self.config.nb_mutations,
        }
    }

    /// One asynchronous child: generated with the shared RNG against the
    /// live population and integrated immediately.
    fn step_async(&mut self) {
        let (cell, child, improvements) = match self.phase {
            Phase::Recombination => {
                let cell = self.rec_order.next_cell(&mut self.rng);
                let (child, improvements) = generate_recombination_child(
                    self.problem,
                    self.config,
                    self.torus,
                    &self.population,
                    cell,
                    &mut self.rng,
                    &mut self.neighbors,
                    &mut self.parents,
                );
                (cell, child, improvements)
            }
            Phase::Mutation => {
                let cell = self.mut_order.next_cell(&mut self.rng);
                let (child, improvements) = generate_mutation_child(
                    self.problem,
                    self.config,
                    &self.population,
                    cell,
                    &mut self.rng,
                );
                (cell, child, improvements)
            }
        };
        self.integrate(cell, child, improvements);
        self.advance_pass();
    }

    /// One synchronous child: drawn from the precomputed batch and
    /// buffered into the double buffer.
    fn step_sync(&mut self) {
        if self.precomputed.is_empty() {
            if self.pass_queue.is_empty() {
                self.draw_pass_schedule();
            }
            self.precompute_batch();
        }
        let PassChild {
            cell,
            child,
            ls_improvements,
        } = self
            .precomputed
            .pop_front()
            .expect("batch is never empty here");
        self.integrate(cell, child, ls_improvements);
        self.advance_pass();
    }

    /// Draws the `(cell, stream seed)` schedule of the whole pass from
    /// the master RNG / stream counter — the deterministic prefix of the
    /// pass, independent of worker count and batch boundaries.
    fn draw_pass_schedule(&mut self) {
        debug_assert_eq!(self.pass_done, 0, "pass schedule drawn mid-pass");
        let pass_len = self.current_pass_len();
        let order = match self.phase {
            Phase::Recombination => &mut self.rec_order,
            Phase::Mutation => &mut self.mut_order,
        };
        self.pass_queue = (0..pass_len)
            .map(|_| {
                let cell = order.next_cell(&mut self.rng);
                self.stream_counter += 1;
                // SplitMix-style stream derivation: nearby counters yield
                // unrelated SmallRng seed expansions.
                let stream = self.seed ^ self.stream_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (cell, stream)
            })
            .collect();
    }

    /// Generates the next worker-sized wave of pass children against the
    /// frozen population, one thread per slot (sequential when
    /// [`CmaConfig::threads`] is 1). Waves rather than whole passes keep
    /// budget overshoot bounded by the worker count: the runner's stop
    /// check runs between waves, so at most `threads - 1` generated
    /// children are discarded on an early stop.
    fn precompute_batch(&mut self) {
        let wave = self.config.threads.clamp(1, self.pass_queue.len());
        let slots: Vec<(usize, u64)> = self.pass_queue.drain(..wave).collect();

        let phase = self.phase;
        let problem = self.problem;
        let config = self.config;
        let torus = self.torus;
        let population: &[Individual] = &self.population;
        let generate_slot = |&(cell, stream): &(usize, u64),
                             neighbors: &mut Vec<usize>,
                             parents: &mut Vec<usize>|
         -> (Individual, u64) {
            let mut rng = SmallRng::seed_from_u64(stream);
            match phase {
                Phase::Recombination => generate_recombination_child(
                    problem, config, torus, population, cell, &mut rng, neighbors, parents,
                ),
                Phase::Mutation => {
                    generate_mutation_child(problem, config, population, cell, &mut rng)
                }
            }
        };

        let generated: Vec<(Individual, u64)> = if slots.len() == 1 {
            // Sequential wave: reuse the engine's scratch buffers instead
            // of allocating per slot (the `threads == 1` hot path).
            vec![generate_slot(
                &slots[0],
                &mut self.neighbors,
                &mut self.parents,
            )]
        } else {
            let mut results: Vec<Option<(Individual, u64)>> =
                (0..slots.len()).map(|_| None).collect();
            let generate_slot = &generate_slot;
            std::thread::scope(|scope| {
                for (slot, out) in slots.iter().zip(results.iter_mut()) {
                    scope.spawn(move || {
                        let mut neighbors = Vec::new();
                        let mut parents = Vec::new();
                        *out = Some(generate_slot(slot, &mut neighbors, &mut parents));
                    });
                }
            });
            results
                .into_iter()
                .map(|r| r.expect("every slot generated"))
                .collect()
        };

        self.precomputed = slots
            .into_iter()
            .zip(generated)
            .map(|((cell, _), (child, ls_improvements))| PassChild {
                cell,
                child,
                ls_improvements,
            })
            .collect();
    }

    /// Counts the child and applies the replacement policy:
    /// strict-improvement gating (`add_only_if_better`), immediate
    /// replacement (asynchronous) or double buffering (synchronous; last
    /// writer per cell wins within a pass).
    fn integrate(&mut self, cell: usize, child: Individual, ls_improvements: u64) {
        self.children += 1;
        self.ls_improvements += ls_improvements;
        let better = child.fitness < self.population[cell].fitness;
        if better || !self.config.add_only_if_better {
            if child.fitness < self.best.fitness {
                self.best = child.clone();
            }
            match self.config.update_policy {
                UpdatePolicy::Asynchronous => self.population[cell] = child,
                UpdatePolicy::Synchronous => self.pending[cell] = Some(child),
            }
            if better {
                self.accepted += 1;
            }
        }
    }

    /// Pass/iteration bookkeeping after each integrated child.
    fn advance_pass(&mut self) {
        self.pass_done += 1;
        if self.pass_done >= self.current_pass_len() {
            self.end_pass();
            self.skip_empty_passes();
        }
    }

    /// Ends the current pass: commits the double buffer and rolls the
    /// phase (a finished mutation pass completes one outer iteration).
    fn end_pass(&mut self) {
        self.commit_pending();
        self.pass_done = 0;
        match self.phase {
            Phase::Recombination => self.phase = Phase::Mutation,
            Phase::Mutation => {
                self.phase = Phase::Recombination;
                self.iterations += 1;
            }
        }
    }

    /// Rolls over passes of length zero (`nb_recombinations == 0` or
    /// `nb_mutations == 0` ablations). Validation guarantees at least one
    /// pass is non-empty, so this terminates.
    fn skip_empty_passes(&mut self) {
        while self.current_pass_len() == 0 {
            self.end_pass();
        }
    }

    /// Applies buffered replacements (synchronous mode only).
    fn commit_pending(&mut self) {
        if self.config.update_policy == UpdatePolicy::Synchronous {
            for (cell, slot) in self.pending.iter_mut().enumerate() {
                if let Some(child) = slot.take() {
                    self.population[cell] = child;
                }
            }
        }
    }
}

/// Shared per-iteration diversity reading (assignment entropy + fitness
/// spread) of every population engine's
/// [`Metaheuristic::population_diversity`]. `None` for degenerate
/// problems (a single machine) or an empty population.
#[must_use]
pub fn population_diversity_of(
    problem: &Problem,
    population: &[Individual],
) -> Option<DiversitySample> {
    if problem.nb_machines() < 2 || population.is_empty() {
        return None;
    }
    let schedules: Vec<&Schedule> = population.iter().map(|i| &i.schedule).collect();
    let fitness: Vec<f64> = population.iter().map(|i| i.fitness).collect();
    Some(DiversitySample {
        entropy: diversity::assignment_entropy(&schedules, problem.nb_machines()),
        fitness_spread: diversity::fitness_spread(&fitness),
    })
}

/// Shared elite-immigration rule of every population engine's
/// [`Metaheuristic::inject`] (cMA cells and the baseline GAs alike):
/// evaluates `schedule` under `weights` and replaces the population's
/// **worst** individual (ties keep the lowest index) when the immigrant
/// strictly beats it, keeping `best` in sync. Returns whether the offer
/// was integrated.
///
/// # Panics
///
/// Panics on an empty population.
pub fn inject_elite(
    problem: &Problem,
    weights: cmags_core::FitnessWeights,
    population: &mut [Individual],
    best: &mut Individual,
    schedule: &Schedule,
) -> bool {
    let mut immigrant = Individual::new(problem, schedule.clone());
    immigrant.fitness =
        problem
            .objective()
            .fitness(weights, immigrant.objectives(), problem.nb_machines());
    let worst = population
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.fitness.total_cmp(&b.1.fitness).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .expect("population is never empty");
    if immigrant.fitness < population[worst].fitness {
        if immigrant.fitness < best.fitness {
            *best = immigrant.clone();
        }
        population[worst] = immigrant;
        true
    } else {
        false
    }
}

impl Metaheuristic for CmaEngine<'_> {
    fn name(&self) -> &'static str {
        "cMA"
    }

    fn step(&mut self) {
        match self.config.update_policy {
            UpdatePolicy::Asynchronous => self.step_async(),
            UpdatePolicy::Synchronous => self.step_sync(),
        }
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn children(&self) -> u64 {
        self.children
    }

    fn best_fitness(&self) -> f64 {
        self.best.fitness
    }

    fn best_objectives(&self) -> Objectives {
        self.best.objectives()
    }

    fn best_schedule(&self) -> Option<&Schedule> {
        Some(&self.best.schedule)
    }

    /// Elite immigration (island/portfolio warm start): the offer is
    /// evaluated under this problem's fitness and replaces the **worst**
    /// cell when strictly better than it — mirroring the replacement
    /// rule of the classic island model. In synchronous mode a pending
    /// buffered child may later overwrite the same cell; the engine's
    /// best-so-far keeps the immigrant either way.
    fn inject(&mut self, schedule: &Schedule) -> bool {
        inject_elite(
            self.problem,
            self.problem.weights(),
            &mut self.population,
            &mut self.best,
            schedule,
        )
    }

    fn population_diversity(&self) -> Option<DiversitySample> {
        population_diversity_of(self.problem, &self.population)
    }
}

/// `SelectToRecombine S ⊆ N_P[cell]; i' = Recombine(S); LocalSearch;
/// Evaluate.` Returns the child and its local-search improvement count.
#[allow(clippy::too_many_arguments)]
fn generate_recombination_child(
    problem: &Problem,
    config: &CmaConfig,
    torus: Torus,
    population: &[Individual],
    cell: usize,
    rng: &mut SmallRng,
    neighbors: &mut Vec<usize>,
    parents: &mut Vec<usize>,
) -> (Individual, u64) {
    config.neighborhood.collect(torus, cell, neighbors);

    // nb_to_recombine tournament winners from the neighbourhood...
    let fitness = |i: usize| population[i].fitness;
    config
        .selection
        .select_many(neighbors, &fitness, rng, config.nb_to_recombine, parents);
    // ...of which the two fittest recombine.
    let (first, second) = two_fittest(parents, &fitness);
    let child_schedule = config.crossover.apply(
        &population[first].schedule,
        &population[second].schedule,
        rng,
    );

    let mut child = Individual::new(problem, child_schedule);
    let improvements = improve(problem, config, &mut child, rng);
    (child, improvements)
}

/// `i' = Mutate(P[cell]); LocalSearch; Evaluate.`
fn generate_mutation_child(
    problem: &Problem,
    config: &CmaConfig,
    population: &[Individual],
    cell: usize,
    rng: &mut SmallRng,
) -> (Individual, u64) {
    let mut child = population[cell].clone();
    config
        .mutation
        .apply(problem, &mut child.schedule, &mut child.eval, rng);
    child.refresh_fitness(problem);
    let improvements = improve(problem, config, &mut child, rng);
    (child, improvements)
}

/// Bounded local search + fitness refresh. Each local-search step scans
/// its candidate set through `EvalState`'s batched scoring API with
/// per-thread scratch buffers, so the sweep's worker threads drive the
/// O(log n) delta evaluator allocation-free.
fn improve(
    problem: &Problem,
    config: &CmaConfig,
    child: &mut Individual,
    rng: &mut SmallRng,
) -> u64 {
    let improvements = config.local_search.run(
        problem,
        &mut child.schedule,
        &mut child.eval,
        rng,
        config.ls_iterations,
    ) as u64;
    child.refresh_fitness(problem);
    improvements
}

/// Runs the configured cMA on `problem` with RNG `seed` through the
/// shared [`Runner`].
///
/// # Panics
///
/// Panics on structurally invalid configurations (see
/// [`CmaConfig::validate`]).
#[must_use]
pub fn run(config: &CmaConfig, problem: &Problem, seed: u64) -> CmaOutcome {
    // lint:allow(no-wall-clock-in-sim): legit wall-clock budget anchor — the paper-protocol time limit is opt-in and informational; the parallel sweep's bit-identity across thread counts never consults this read.
    let start = Instant::now();
    let mut engine = CmaEngine::new(config, problem, seed);
    let mut trace = TraceSink::new();
    let mut diversity = DiversitySink::new();
    let stats =
        Runner::new(config.stop).run_from(start, &mut engine, &mut [&mut trace, &mut diversity]);
    engine.into_outcome(stats, trace.into_points(), diversity.into_points())
}

/// The fittest individual of a population slice.
fn best_of_population(population: &[Individual]) -> &Individual {
    population
        .iter()
        .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
        .expect("population is never empty")
}

/// Indices of the two fittest entries of `parents` (which may repeat when
/// selection returned duplicates — harmless: crossover of identical
/// parents reproduces the parent).
fn two_fittest(parents: &[usize], fitness: &dyn Fn(usize) -> f64) -> (usize, usize) {
    debug_assert!(parents.len() >= 2);
    let mut sorted: Vec<usize> = parents.to_vec();
    sorted.sort_by(|&a, &b| fitness(a).total_cmp(&fitness(b)));
    (sorted[0], sorted[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopCondition;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_c_hihi.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(128, 8), 0))
    }

    fn quick_config() -> CmaConfig {
        CmaConfig::paper().with_stop(StopCondition::iterations(4))
    }

    #[test]
    fn runs_and_reports_consistent_counters() {
        let p = problem();
        let outcome = quick_config().run(&p, 7);
        assert_eq!(outcome.iterations, 4);
        // 4 iterations x (25 + 12) children.
        assert_eq!(outcome.children, 4 * 37);
        assert!(outcome.accepted <= outcome.children);
        assert!(outcome.trace.len() >= 2);
        assert!(outcome.objectives.makespan > 0.0);
    }

    #[test]
    fn deterministic_under_iteration_budget() {
        let p = problem();
        let a = quick_config().run(&p, 99);
        let b = quick_config().run(&p, 99);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.objectives, b.objectives);
        assert_eq!(a.children, b.children);
        let c = quick_config().run(&p, 100);
        // Different seeds explore differently (overwhelmingly likely).
        assert_ne!(a.schedule, c.schedule);
    }

    #[test]
    fn improves_over_its_own_seed_heuristic() {
        let p = problem();
        use cmags_heuristics::constructive::{Constructive, LjfrSjfr};
        let seed_fitness = Individual::new(&p, LjfrSjfr.build(&p)).fitness;
        let outcome = CmaConfig::paper()
            .with_stop(StopCondition::iterations(10))
            .run(&p, 3);
        assert!(
            outcome.fitness < seed_fitness,
            "cMA ({}) must improve on LJFR-SJFR ({seed_fitness})",
            outcome.fitness
        );
    }

    #[test]
    fn trace_is_monotone_in_time_and_fitness() {
        let p = problem();
        let outcome = quick_config().run(&p, 11);
        for w in outcome.trace.windows(2) {
            assert!(w[1].elapsed_ms >= w[0].elapsed_ms);
            assert!(w[1].fitness <= w[0].fitness);
        }
    }

    #[test]
    fn best_matches_reevaluation() {
        let p = problem();
        let outcome = quick_config().run(&p, 5);
        let fresh = cmags_core::evaluate(&p, &outcome.schedule);
        assert_eq!(outcome.objectives, fresh);
        assert_eq!(outcome.fitness, p.fitness(fresh));
    }

    #[test]
    fn children_budget_stops_early() {
        let p = problem();
        let outcome = CmaConfig::paper()
            .with_stop(StopCondition::children(10))
            .run(&p, 1);
        assert_eq!(outcome.children, 10);
        assert_eq!(outcome.iterations, 0, "stopped mid-first-iteration");
    }

    #[test]
    fn synchronous_policy_runs_and_improves() {
        let p = problem();
        let outcome = quick_config()
            .with_update_policy(UpdatePolicy::Synchronous)
            .run(&p, 13);
        assert!(outcome.accepted > 0);
        let fresh = cmags_core::evaluate(&p, &outcome.schedule);
        assert_eq!(outcome.objectives, fresh);
    }

    #[test]
    fn synchronous_sweep_is_thread_count_independent() {
        let p = problem();
        let base = quick_config().with_update_policy(UpdatePolicy::Synchronous);
        let sequential = base.clone().with_threads(1).run(&p, 21);
        for threads in [2, 3, 8] {
            let parallel = base.clone().with_threads(threads).run(&p, 21);
            assert_eq!(sequential.schedule, parallel.schedule, "{threads} threads");
            assert_eq!(sequential.objectives, parallel.objectives);
            assert_eq!(sequential.children, parallel.children);
            assert_eq!(sequential.accepted, parallel.accepted);
            assert_eq!(sequential.ls_improvements, parallel.ls_improvements);
        }
    }

    #[test]
    fn synchronous_mid_pass_stop_keeps_children_exact() {
        let p = problem();
        let outcome = CmaConfig::paper()
            .with_update_policy(UpdatePolicy::Synchronous)
            .with_threads(4)
            .with_stop(StopCondition::children(10))
            .run(&p, 3);
        assert_eq!(outcome.children, 10);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn target_fitness_short_circuits() {
        let p = problem();
        // Target = infinity-ish: met immediately after init.
        let outcome = CmaConfig::paper()
            .with_stop(StopCondition::iterations(1000).and_target_fitness(f64::MAX))
            .run(&p, 2);
        assert_eq!(outcome.children, 0);
    }

    #[test]
    fn panmictic_neighborhood_also_works() {
        let p = problem();
        let outcome = quick_config()
            .with_neighborhood(crate::Neighborhood::Panmictic)
            .run(&p, 21);
        assert!(outcome.objectives.makespan > 0.0);
    }

    #[test]
    fn two_fittest_orders_correctly() {
        let fitness = |i: usize| [5.0, 1.0, 3.0][i];
        assert_eq!(two_fittest(&[0, 1, 2], &fitness), (1, 2));
        assert_eq!(two_fittest(&[2, 2], &fitness), (2, 2));
    }

    #[test]
    fn engine_exposes_trait_telemetry() {
        let p = problem();
        let config = quick_config();
        let mut engine = CmaEngine::new(&config, &p, 5);
        assert_eq!(engine.name(), "cMA");
        assert_eq!(engine.children(), 0);
        let before = engine.best_fitness();
        for _ in 0..37 {
            engine.step();
        }
        assert_eq!(engine.iterations(), 1);
        assert_eq!(engine.children(), 37);
        assert!(engine.best_fitness() <= before);
        assert_eq!(engine.best_objectives(), engine.best.objectives());
    }
}
