//! Configuration of the cellular memetic algorithm (paper Table 1).

use cmags_core::Problem;
use cmags_heuristics::constructive::ConstructiveKind;
use cmags_heuristics::local_search::LocalSearchKind;
use cmags_heuristics::ops::{Crossover, Mutation};

use crate::{CmaOutcome, Neighborhood, Selection, StopCondition, SweepOrder};

/// Cell replacement policy of the asynchronous/synchronous ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Replacements take effect immediately — later cells in the same
    /// sweep see them (the paper's choice: cheaper and faster in the
    /// short runs grids need).
    Asynchronous,
    /// Replacements are buffered and applied at the end of each operator
    /// pass (canonical synchronous cGA behaviour; ablation extension).
    Synchronous,
}

/// Full configuration of a cMA run.
///
/// [`CmaConfig::paper`] reproduces Table 1 exactly; builder methods
/// (`with_*`) derive variants for the tuning figures and ablations.
#[derive(Debug, Clone)]
pub struct CmaConfig {
    /// Population grid height (Table 1: 5).
    pub pop_height: usize,
    /// Population grid width (Table 1: 5).
    pub pop_width: usize,
    /// Solutions selected per recombination (Table 1: 3).
    pub nb_to_recombine: usize,
    /// Recombinations per outer iteration (Table 1: 25).
    pub nb_recombinations: usize,
    /// Mutations per outer iteration (Table 1: 12).
    pub nb_mutations: usize,
    /// Population seeding heuristic (Table 1: LJFR-SJFR).
    pub seeding: ConstructiveKind,
    /// Perturbation strength deriving the rest of the population from the
    /// seed ("large perturbations"; fraction of jobs reassigned).
    pub perturb_strength: f64,
    /// Neighbourhood pattern (Table 1: C9).
    pub neighborhood: Neighborhood,
    /// Recombination sweep order (Table 1: FLS).
    pub rec_order: SweepOrder,
    /// Mutation sweep order (Table 1: NRS).
    pub mut_order: SweepOrder,
    /// Recombination operator (Table 1: one-point).
    pub crossover: Crossover,
    /// Parent selection (Table 1: 3-tournament).
    pub selection: Selection,
    /// Mutation operator (Table 1: rebalance).
    pub mutation: Mutation,
    /// Local search method (Table 1: LMCTS).
    pub local_search: LocalSearchKind,
    /// Local search iterations per offspring (Table 1: 5).
    pub ls_iterations: usize,
    /// Replace a cell only when the offspring is strictly better
    /// (Table 1: true).
    pub add_only_if_better: bool,
    /// Asynchronous (paper) or synchronous (ablation) cell updating.
    pub update_policy: UpdatePolicy,
    /// Worker threads generating each synchronous pass (ignored by the
    /// asynchronous policy, which is inherently sequential). Synchronous
    /// results are identical for every thread count — per-slot RNG
    /// streams are split from the master seed — so this knob only trades
    /// wall-clock time.
    pub threads: usize,
    /// Stopping condition (the paper runs 90 s wall clock).
    pub stop: StopCondition,
}

impl CmaConfig {
    /// The tuned configuration of Table 1.
    ///
    /// The stopping condition defaults to the paper's 90 s wall-clock
    /// budget; callers virtually always override it via
    /// [`CmaConfig::with_stop`] (tests and benches use deterministic
    /// children/iteration budgets).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            pop_height: 5,
            pop_width: 5,
            nb_to_recombine: 3,
            nb_recombinations: 25,
            nb_mutations: 12,
            seeding: ConstructiveKind::LjfrSjfr,
            perturb_strength: 0.5,
            neighborhood: Neighborhood::C9,
            rec_order: SweepOrder::FixedLineSweep,
            mut_order: SweepOrder::NewRandomSweep,
            crossover: Crossover::OnePoint,
            selection: Selection::NTournament(3),
            mutation: Mutation::Rebalance,
            local_search: LocalSearchKind::Lmcts,
            ls_iterations: 5,
            add_only_if_better: true,
            update_policy: UpdatePolicy::Asynchronous,
            threads: 1,
            stop: StopCondition::paper_time(),
        }
    }

    /// Population size (`pop_height × pop_width`).
    #[must_use]
    pub fn population_size(&self) -> usize {
        self.pop_height * self.pop_width
    }

    /// Replaces the stopping condition.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Replaces the neighbourhood pattern (Fig. 3 sweep).
    #[must_use]
    pub fn with_neighborhood(mut self, neighborhood: Neighborhood) -> Self {
        self.neighborhood = neighborhood;
        self
    }

    /// Replaces the local search method (Fig. 2 sweep).
    #[must_use]
    pub fn with_local_search(mut self, kind: LocalSearchKind) -> Self {
        self.local_search = kind;
        self
    }

    /// Replaces the selection operator (Fig. 4 sweep).
    #[must_use]
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Replaces the recombination sweep order (Fig. 5 sweep).
    #[must_use]
    pub fn with_rec_order(mut self, order: SweepOrder) -> Self {
        self.rec_order = order;
        self
    }

    /// Replaces the mutation sweep order.
    #[must_use]
    pub fn with_mut_order(mut self, order: SweepOrder) -> Self {
        self.mut_order = order;
        self
    }

    /// Replaces the population dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_population(mut self, height: usize, width: usize) -> Self {
        assert!(
            height > 0 && width > 0,
            "population dimensions must be positive"
        );
        self.pop_height = height;
        self.pop_width = width;
        self
    }

    /// Replaces the seeding heuristic (ablation: random vs LJFR-SJFR).
    #[must_use]
    pub fn with_seeding(mut self, seeding: ConstructiveKind) -> Self {
        self.seeding = seeding;
        self
    }

    /// Replaces the update policy (async/sync ablation).
    #[must_use]
    pub fn with_update_policy(mut self, policy: UpdatePolicy) -> Self {
        self.update_policy = policy;
        self
    }

    /// Replaces the synchronous-pass worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Synchronous updating across all available CPU cores — the fast
    /// deterministic configuration for large meshes.
    #[must_use]
    pub fn parallel_sync(self) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.with_update_policy(UpdatePolicy::Synchronous)
            .with_threads(threads)
    }

    /// Replaces the crossover operator.
    #[must_use]
    pub fn with_crossover(mut self, crossover: Crossover) -> Self {
        self.crossover = crossover;
        self
    }

    /// Replaces the mutation operator.
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Replaces the per-offspring local search budget.
    #[must_use]
    pub fn with_ls_iterations(mut self, iterations: usize) -> Self {
        self.ls_iterations = iterations;
        self
    }

    /// Runs the algorithm on `problem` with this configuration and the
    /// given RNG seed. Convenience facade over the engine module.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unbounded (no stopping condition)
    /// or structurally invalid (zero-sized population, zero recombinations
    /// and mutations).
    #[must_use]
    pub fn run(&self, problem: &Problem, seed: u64) -> CmaOutcome {
        crate::engine::run(self, problem, seed)
    }

    /// Validates structural invariants; called by the engine.
    pub(crate) fn validate(&self) {
        assert!(
            self.pop_height > 0 && self.pop_width > 0,
            "empty population grid"
        );
        assert!(
            self.nb_recombinations + self.nb_mutations > 0,
            "at least one operator application per iteration required"
        );
        assert!(
            self.nb_to_recombine >= 2,
            "recombination needs at least two parents"
        );
        assert!(
            self.stop.is_bounded(),
            "unbounded run: configure a stopping condition"
        );
        assert!(
            (0.0..=1.0).contains(&self.perturb_strength),
            "perturbation strength must be within [0, 1]"
        );
        assert!(self.threads > 0, "need at least one worker thread");
    }
}

impl Default for CmaConfig {
    /// Table 1 configuration.
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The full Table 1, asserted value by value.
    #[test]
    fn paper_config_matches_table1() {
        let c = CmaConfig::paper();
        assert_eq!(c.pop_height, 5);
        assert_eq!(c.pop_width, 5);
        assert_eq!(c.population_size(), 25);
        assert_eq!(c.nb_to_recombine, 3);
        assert_eq!(c.nb_recombinations, 25);
        assert_eq!(c.nb_mutations, 12);
        assert_eq!(c.seeding, ConstructiveKind::LjfrSjfr);
        assert_eq!(c.neighborhood, Neighborhood::C9);
        assert_eq!(c.rec_order, SweepOrder::FixedLineSweep);
        assert_eq!(c.mut_order, SweepOrder::NewRandomSweep);
        assert_eq!(c.crossover, Crossover::OnePoint);
        assert_eq!(c.selection, Selection::NTournament(3));
        assert_eq!(c.mutation, Mutation::Rebalance);
        assert_eq!(c.local_search, LocalSearchKind::Lmcts);
        assert_eq!(c.ls_iterations, 5);
        assert!(c.add_only_if_better);
        assert_eq!(c.update_policy, UpdatePolicy::Asynchronous);
        assert_eq!(c.threads, 1, "the paper's engine is single-threaded");
        assert_eq!(c.stop.time_limit, Some(Duration::from_secs(90)));
    }

    #[test]
    fn builders_replace_fields() {
        let c = CmaConfig::paper()
            .with_neighborhood(Neighborhood::L5)
            .with_local_search(LocalSearchKind::Lm)
            .with_selection(Selection::NTournament(7))
            .with_rec_order(SweepOrder::NewRandomSweep)
            .with_population(4, 8)
            .with_stop(StopCondition::iterations(3));
        assert_eq!(c.neighborhood, Neighborhood::L5);
        assert_eq!(c.local_search, LocalSearchKind::Lm);
        assert_eq!(c.selection, Selection::NTournament(7));
        assert_eq!(c.rec_order, SweepOrder::NewRandomSweep);
        assert_eq!(c.population_size(), 32);
        assert_eq!(c.stop.max_iterations, Some(3));
    }

    #[test]
    #[should_panic(expected = "unbounded run")]
    fn unbounded_config_rejected() {
        let c = CmaConfig::paper().with_stop(StopCondition::default());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least two parents")]
    fn single_parent_rejected() {
        let mut c = CmaConfig::paper();
        c.nb_to_recombine = 1;
        c.validate();
    }
}
