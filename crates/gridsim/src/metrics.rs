//! Aggregate metrics of one simulation run.
//!
//! Two kinds of quantities live here, and they must not be conflated
//! (the split is defined in [`cmags_core::telemetry`]):
//!
//! * **Tick-domain, exact, deterministic** — job counts, digests, and
//!   the [`TelemetryReport`] histograms/gauges. These replay
//!   bit-identically across runs, queue backends and worker-thread
//!   counts, and the determinism tests pin them.
//! * **Wall-clock, informational-only** — `scheduler_wall_s`,
//!   `sim_wall_s`, and the [`TelemetryReport::phases`] durations. They
//!   vary run to run; nothing deterministic may depend on them.

use cmags_core::telemetry::{Gauge, PhaseProfile, TickHistogram};

/// Per-job record of one completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub job: u64,
    /// Arrival time.
    pub arrival: f64,
    /// First execution start.
    pub started: f64,
    /// Completion time.
    pub finished: f64,
    /// Waiting time (final-attempt start − arrival) in exact ticks —
    /// the histogram-domain twin of `started - arrival`.
    pub wait_ticks: u64,
    /// Response time (completion − arrival) in exact ticks.
    pub response_ticks: u64,
    /// How many times the job was (re)submitted after machine departures.
    pub resubmissions: u32,
    /// How many execution attempts were lost to transient failures or
    /// machine crashes before this completion.
    pub failures: u32,
}

/// Deterministic telemetry of one simulation run: tick-domain
/// histograms and gauges (exact, pinned by the determinism tests) plus
/// the wall-clock phase profile (informational-only, empty unless
/// profiling was enabled via `Simulation::with_profiling`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Job waiting times (final-attempt start − arrival), exact ticks.
    pub wait: TickHistogram,
    /// Job response times (completion − arrival), exact ticks.
    pub response: TickHistogram,
    /// Pending (unscheduled) jobs, sampled at every scheduler
    /// activation.
    pub pending_jobs: Gauge,
    /// Live event-queue depth, sampled at every scheduler activation.
    /// Backend-invariant: cancelled-but-unpopped entries are excluded.
    pub queue_depth: Gauge,
    /// Job dispatches handed to machines (one per job per activation it
    /// was planned in).
    pub dispatches: u64,
    /// Delayed retries armed by the fault layer.
    pub retries_scheduled: u64,
    /// Events executed by each site-local event loop (index = site; a
    /// single-site grid has one entry). Tick-domain exact: pop
    /// attribution is a function of the merged `(tick, seq)` order, so
    /// these counts are identical across backends and worker counts.
    pub site_events: Vec<u64>,
    /// Events executed by the coordinator loop (arrivals, scheduler
    /// activations, churn, retries). Tick-domain exact.
    pub coordinator_events: u64,
    /// Cross-shard messages: events one loop scheduled into another
    /// domain (site→coordinator, coordinator→site, or site→site),
    /// exchanged at the `(tick, seq)` merge. Tick-domain exact.
    pub cross_shard_messages: u64,
    /// Lockstep epochs crossed — scheduler-activation barriers, at
    /// which cross-shard handoffs take effect. Tick-domain exact.
    pub epochs: u64,
    /// Per-site live event backlog, sampled at every scheduler
    /// activation (index = site). Backend-invariant like
    /// [`queue_depth`](Self::queue_depth).
    pub site_queue_depth: Vec<Gauge>,
    /// Per-site snapshot-build wall seconds (index = site).
    /// **Informational-only** and populated only when profiling is on
    /// and the grid is multi-site.
    pub site_snapshot_s: Vec<f64>,
    /// Wall-clock phase attribution (scheduler / snapshot_build /
    /// dispatch / queue / fault_handling). **Informational-only** —
    /// durations vary run to run; span *counts* are deterministic.
    pub phases: PhaseProfile,
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Scheduler under test.
    pub scheduler: String,
    /// Jobs that entered the system.
    pub jobs_submitted: u64,
    /// Jobs completed by the end of the run.
    pub jobs_completed: u64,
    /// Jobs killed by machine departures and resubmitted.
    pub resubmissions: u64,
    /// Jobs dropped terminally after exhausting their retry budget
    /// ([`crate::RetryPolicy`]'s `give_up_after`).
    pub jobs_dropped: u64,
    /// Execution attempts lost to transient failures or crash kills.
    pub job_failures: u64,
    /// Machine crash events (quarantine until repair; permanent
    /// departures are counted by the churn layer, not here).
    pub machine_crashes: u64,
    /// Machine repair completions.
    pub machine_recoveries: u64,
    /// Execution ticks lost to failed attempts, net of checkpoint
    /// salvage: the work a retry has to redo. Checkpointing exists to
    /// shrink this.
    pub wasted_ticks: u64,
    /// Largest per-job resubmission count observed (saturating).
    pub max_resubmits: u32,
    /// Largest per-job failed-attempt count observed (saturating).
    pub max_failures: u32,
    /// Completion time of the last job (paper's makespan analogue).
    pub realized_makespan: f64,
    /// Sum of completion times (the paper's flowtime definition).
    pub flowtime: f64,
    /// Sum of response times (completion − arrival).
    pub total_response: f64,
    /// Sum of waiting times (first start − arrival).
    pub total_wait: f64,
    /// Scheduler activations that had work to plan.
    pub activations: u64,
    /// Total wall-clock seconds spent inside the batch scheduler.
    pub scheduler_wall_s: f64,
    /// Machine-seconds of busy time (across all machines that ever lived).
    pub busy_machine_seconds: f64,
    /// Machine-seconds of availability.
    pub available_machine_seconds: f64,
    /// Order-sensitive FNV-1a fold of the *exogenous* event stream —
    /// every job arrival (id, time, baseline) and churn event (join,
    /// leave, shock) in processing order. The scheduler under test never
    /// contributes to it, so two runs over the same `(config, seed)`
    /// must produce **identical** digests whatever scheduler (or
    /// scheduler objective λ) is plugged in, as long as execution noise
    /// is off; a mismatch means the scheduler perturbed the simulation's
    /// RNG stream. (With execution noise on, start-order-dependent noise
    /// draws interleave with the arrival process, so the stream is
    /// genuinely schedule-dependent and digests may differ.)
    pub event_digest: u64,
    /// Order-sensitive FNV-1a fold of the **fault** stream: transient
    /// failures, retry scheduling, crash kills and terminal drops in
    /// processing order. Kept separate from
    /// [`SimReport::event_digest`] because fault instants depend on
    /// *where* jobs run — the fault stream is schedule-dependent by
    /// nature, while the exogenous digest must stay
    /// scheduler-invariant. The chaos harness pins this digest
    /// bit-identical across queue backends and worker-thread counts.
    pub fault_digest: u64,
    /// Events drained from the queue over the whole run.
    pub events_processed: u64,
    /// Wall-clock seconds of the whole run, *including* scheduler time
    /// ([`SimReport::scheduler_wall_s`] is the scheduler-only share).
    pub sim_wall_s: f64,
    /// Deterministic telemetry: tail-latency histograms, load gauges,
    /// and (when profiling is on) the wall-clock phase profile.
    pub telemetry: TelemetryReport,
}

impl SimReport {
    /// Mean response time per completed job.
    #[must_use]
    pub fn mean_response(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.total_response / self.jobs_completed as f64
        }
    }

    /// Mean waiting time per completed job.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.total_wait / self.jobs_completed as f64
        }
    }

    /// A waiting-time percentile in seconds, resolved from the exact
    /// tick-domain histogram (`q ∈ [0, 1]`; `None` before the first
    /// completion). Bucket-granular: overshoots the true order
    /// statistic by at most 12.5% relative.
    #[must_use]
    pub fn wait_percentile(&self, q: f64) -> Option<f64> {
        self.telemetry
            .wait
            .quantile(q)
            .map(|t| cmags_core::ticks::time(i128::from(t)))
    }

    /// A response-time percentile in seconds (see
    /// [`SimReport::wait_percentile`] for resolution semantics).
    #[must_use]
    pub fn response_percentile(&self, q: f64) -> Option<f64> {
        self.telemetry
            .response
            .quantile(q)
            .map(|t| cmags_core::ticks::time(i128::from(t)))
    }

    /// Fraction of available machine time spent busy, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.available_machine_seconds == 0.0 {
            0.0
        } else {
            (self.busy_machine_seconds / self.available_machine_seconds).min(1.0)
        }
    }

    /// Folds one exogenous event into [`SimReport::event_digest`]
    /// (FNV-1a over the little-endian bytes of each word).
    pub(crate) fn fold_event(&mut self, parts: &[u64]) {
        fnv_fold(&mut self.event_digest, parts);
    }

    /// Folds one fault-layer event into [`SimReport::fault_digest`].
    pub(crate) fn fold_fault(&mut self, parts: &[u64]) {
        fnv_fold(&mut self.fault_digest, parts);
    }

    /// Updates the per-job attempt maxima (on completion *and* drop).
    pub(crate) fn note_attempts(&mut self, resubmissions: u32, failures: u32) {
        self.max_resubmits = self.max_resubmits.max(resubmissions);
        self.max_failures = self.max_failures.max(failures);
    }

    /// Folds one completed job into the aggregates (means *and* the
    /// exact tick-domain tail histograms).
    pub fn record_completion(&mut self, record: &JobRecord) {
        self.jobs_completed += 1;
        self.realized_makespan = self.realized_makespan.max(record.finished);
        self.flowtime += record.finished;
        self.total_response += record.finished - record.arrival;
        self.total_wait += record.started - record.arrival;
        self.telemetry.wait.record(record.wait_ticks);
        self.telemetry.response.record(record.response_ticks);
        self.resubmissions += u64::from(record.resubmissions);
        self.note_attempts(record.resubmissions, record.failures);
    }
}

/// Order-sensitive FNV-1a over the little-endian bytes of each word.
fn fnv_fold(digest: &mut u64, parts: &[u64]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &part in parts {
        for byte in part.to_le_bytes() {
            *digest ^= u64::from(byte);
            *digest = digest.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, started: f64, finished: f64) -> JobRecord {
        JobRecord {
            job: 0,
            arrival,
            started,
            finished,
            wait_ticks: cmags_core::ticks::ticks(started - arrival).max(0) as u64,
            response_ticks: cmags_core::ticks::ticks(finished - arrival).max(0) as u64,
            resubmissions: 0,
            failures: 0,
        }
    }

    #[test]
    fn aggregates_accumulate() {
        let mut report = SimReport::default();
        report.record_completion(&record(0.0, 1.0, 5.0));
        report.record_completion(&record(2.0, 2.0, 10.0));
        assert_eq!(report.jobs_completed, 2);
        assert_eq!(report.realized_makespan, 10.0);
        assert_eq!(report.flowtime, 15.0);
        assert_eq!(report.total_response, 5.0 + 8.0);
        assert_eq!(report.total_wait, 1.0);
        assert_eq!(report.mean_response(), 6.5);
        assert_eq!(report.mean_wait(), 0.5);
    }

    #[test]
    fn event_digest_is_order_sensitive() {
        let mut a = SimReport::default();
        a.fold_event(&[1, 2]);
        let mut b = SimReport::default();
        b.fold_event(&[2, 1]);
        assert_ne!(a.event_digest, b.event_digest);
        let mut c = SimReport::default();
        c.fold_event(&[1]);
        c.fold_event(&[2]);
        assert_eq!(a.event_digest, c.event_digest, "folds concatenate");
    }

    #[test]
    fn fault_digest_is_independent_of_the_event_digest() {
        let mut report = SimReport::default();
        report.fold_event(&[1, 2, 3]);
        assert_eq!(report.fault_digest, 0, "event folds leave faults alone");
        let exogenous = report.event_digest;
        report.fold_fault(&[4, 5]);
        assert_eq!(
            report.event_digest, exogenous,
            "fault folds leave events alone"
        );
        assert_ne!(report.fault_digest, 0);
    }

    #[test]
    fn attempt_maxima_track_completions_and_drops() {
        let mut report = SimReport::default();
        report.record_completion(&JobRecord {
            job: 0,
            arrival: 0.0,
            started: 1.0,
            finished: 2.0,
            wait_ticks: 0,
            response_ticks: 0,
            resubmissions: 3,
            failures: 1,
        });
        report.note_attempts(1, 7); // e.g. a dropped job's final counts
        assert_eq!(report.max_resubmits, 3);
        assert_eq!(report.max_failures, 7);
    }

    #[test]
    fn empty_report_means_are_zero() {
        let report = SimReport::default();
        assert_eq!(report.mean_response(), 0.0);
        assert_eq!(report.mean_wait(), 0.0);
        assert_eq!(report.utilization(), 0.0);
        assert_eq!(report.wait_percentile(0.95), None);
        assert_eq!(report.response_percentile(0.99), None);
    }

    #[test]
    fn percentiles_track_the_tick_histograms() {
        let mut report = SimReport::default();
        for i in 1..=100u32 {
            report.record_completion(&record(0.0, f64::from(i), f64::from(i) * 2.0));
        }
        let p50_wait = report.wait_percentile(0.5).expect("non-empty");
        let p99_resp = report.response_percentile(0.99).expect("non-empty");
        // Bucket-granular: at most 12.5% relative overshoot plus the
        // tick→seconds rounding.
        assert!((50.0..=57.0).contains(&p50_wait), "p50 wait = {p50_wait}");
        assert!((198.0..=223.0).contains(&p99_resp), "p99 resp = {p99_resp}");
        assert_eq!(report.telemetry.wait.count(), 100);
        assert_eq!(report.telemetry.response.count(), 100);
        // The histogram's exact sum agrees with the float aggregate.
        let mean_from_hist = cmags_core::ticks::time(report.telemetry.wait.sum() as i128) / 100.0;
        assert!(
            (mean_from_hist - report.mean_wait()).abs() < 1e-6,
            "histogram mean {mean_from_hist} vs float mean {}",
            report.mean_wait()
        );
    }

    #[test]
    fn utilization_is_bounded() {
        let report = SimReport {
            busy_machine_seconds: 120.0,
            available_machine_seconds: 100.0,
            ..SimReport::default()
        };
        assert_eq!(report.utilization(), 1.0);
    }
}
