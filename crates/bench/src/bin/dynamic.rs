//! Runs the dynamic-scheduler experiment (paper §1/§6 claim) on the
//! discrete-event grid simulator, sweeping the scenario-family catalog
//! (restrict with `--families calm,bursty,…`).

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::dynamic::dynamic;
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    emit(&ctx, &dynamic(&ctx));
}
