//! Property-based tests of the cellular machinery: torus geometry,
//! neighbourhood structure, sweep orders and engine invariants.

use cmags_cma::{CmaConfig, Neighborhood, StopCondition, SweepOrder, SweepState, Torus};
use cmags_core::{evaluate, Problem};
use cmags_etc::braun;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_torus() -> impl Strategy<Value = Torus> {
    (1usize..12, 1usize..12).prop_map(|(h, w)| Torus::new(h, w))
}

fn arb_neighborhood() -> impl Strategy<Value = Neighborhood> {
    prop_oneof![
        Just(Neighborhood::Panmictic),
        Just(Neighborhood::L5),
        Just(Neighborhood::L9),
        Just(Neighborhood::C9),
        Just(Neighborhood::C13),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Offset arithmetic stays within bounds and is invertible.
    #[test]
    fn torus_offsets_are_bijective(
        torus in arb_torus(),
        cell in 0usize..144,
        dr in -5isize..6,
        dc in -5isize..6,
    ) {
        let cell = cell % torus.len();
        let moved = torus.offset(cell, dr, dc);
        prop_assert!(moved < torus.len());
        prop_assert_eq!(torus.offset(moved, -dr, -dc), cell, "offsets must invert");
    }

    /// Neighbourhood membership is symmetric, includes the centre, is
    /// deduplicated and sorted, on arbitrary torus shapes.
    #[test]
    fn neighborhoods_are_symmetric_everywhere(
        torus in arb_torus(),
        pattern in arb_neighborhood(),
    ) {
        let mut buf = Vec::new();
        let mut buf2 = Vec::new();
        for center in 0..torus.len() {
            pattern.collect(torus, center, &mut buf);
            prop_assert!(buf.contains(&center));
            prop_assert!(buf.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            for &n in &buf {
                pattern.collect(torus, n, &mut buf2);
                prop_assert!(buf2.contains(&center), "symmetry violated");
            }
        }
    }

    /// Every sweep order yields each cell exactly once per sweep, from
    /// any starting state and for any population size.
    #[test]
    fn sweeps_are_permutations(
        n in 1usize..64,
        seed in any::<u64>(),
        order in prop_oneof![
            Just(SweepOrder::FixedLineSweep),
            Just(SweepOrder::FixedRandomSweep),
            Just(SweepOrder::NewRandomSweep),
        ],
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut state = SweepState::new(order, n, &mut rng);
        for _ in 0..3 {
            let mut sweep: Vec<usize> = (0..n).map(|_| state.next_cell(&mut rng)).collect();
            sweep.sort_unstable();
            prop_assert_eq!(sweep, (0..n).collect::<Vec<_>>());
        }
    }

    /// Engine invariants on arbitrary (small) problems and grid shapes:
    /// the outcome re-evaluates exactly, counters are consistent, and
    /// the trace is monotone.
    #[test]
    fn engine_invariants_hold(
        jobs in 8u32..40,
        machines in 2u32..6,
        h in 2usize..5,
        w in 2usize..5,
        seed in any::<u64>(),
        pattern in arb_neighborhood(),
    ) {
        let class: cmags_etc::InstanceClass = "u_s_hihi.0".parse().unwrap();
        let problem =
            Problem::from_instance(&braun::generate(class.with_dims(jobs, machines), 1));
        let config = CmaConfig::paper()
            .with_population(h, w)
            .with_neighborhood(pattern)
            .with_stop(StopCondition::children(40));
        let outcome = config.run(&problem, seed);

        prop_assert_eq!(evaluate(&problem, &outcome.schedule), outcome.objectives);
        prop_assert_eq!(outcome.children, 40);
        prop_assert!(outcome.accepted <= outcome.children);
        for pair in outcome.trace.windows(2) {
            prop_assert!(pair[1].fitness <= pair[0].fitness);
            prop_assert!(pair[1].elapsed_ms >= pair[0].elapsed_ms);
        }
    }
}
