//! Cost of the constructive heuristics across problem scales — the
//! immediate-mode family is linear, Min-Min/Max-Min/Sufferage are
//! `O(jobs² · machines)` and dominate at the "larger instances" the
//! paper lists as future work.

use std::hint::black_box;

use cmags_core::Problem;
use cmags_etc::{braun, InstanceClass};
use cmags_heuristics::constructive::ConstructiveKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn problem(jobs: u32, machines: u32) -> Problem {
    let class: InstanceClass = "u_s_hihi.0".parse().unwrap();
    Problem::from_instance(&braun::generate(class.with_dims(jobs, machines), 0))
}

fn bench_constructive(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructive");
    for (jobs, machines) in [(512u32, 16u32), (1024, 32)] {
        let p = problem(jobs, machines);
        for kind in [
            ConstructiveKind::LjfrSjfr,
            ConstructiveKind::MinMin,
            ConstructiveKind::MaxMin,
            ConstructiveKind::Sufferage,
            ConstructiveKind::Mct,
            ConstructiveKind::Met,
            ConstructiveKind::Olb,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{jobs}x{machines}")),
                &kind,
                |b, &kind| {
                    let mut rng = SmallRng::seed_from_u64(0);
                    b.iter(|| black_box(kind.build_seeded(&p, &mut rng)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_constructive);
criterion_main!(benches);
