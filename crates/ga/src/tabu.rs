//! Tabu Search baseline.
//!
//! The second classic local-search metaheuristic of Braun et al.'s
//! eleven-mapper comparison (JPDC 2001). Each iteration samples a set
//! of candidate single-job moves, applies the best one that is not
//! *tabu* — moving a job back to a machine it recently left is
//! forbidden for [`TabuSearch::tenure`] iterations — and accepts it
//! even when it worsens the fitness, which is what lets the search
//! climb out of local optima that stall the pure hill-climbers of the
//! memetic algorithm. An *aspiration* rule overrides the tabu status of
//! any move that would beat the best schedule seen so far.

use std::cell::RefCell;
use std::time::Instant;

use cmags_cma::{Individual, StopCondition};
use cmags_core::engine::Metaheuristic;
use cmags_core::{JobId, MachineId, Objectives, Problem, Schedule, ScoreBuf};
use cmags_heuristics::constructive::ConstructiveKind;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::common::{run_to_outcome, BaselineEngine, GaOutcome};

thread_local! {
    /// Per-thread candidate + score buffers of the batched move scoring.
    static SCRATCH: RefCell<(Vec<(JobId, MachineId)>, ScoreBuf)> =
        RefCell::new((Vec::new(), ScoreBuf::new()));
}

/// Short-term memory: `(job, machine)` pairs forbidden until an
/// iteration stamp.
#[derive(Debug, Clone)]
pub struct TabuList {
    expiry: Vec<u64>,
    nb_machines: usize,
    tenure: u64,
}

impl TabuList {
    /// An empty list for a `nb_jobs × nb_machines` problem.
    #[must_use]
    pub fn new(nb_jobs: usize, nb_machines: usize, tenure: u64) -> Self {
        Self {
            expiry: vec![0; nb_jobs * nb_machines],
            nb_machines,
            tenure,
        }
    }

    /// Forbids assigning `job` to `machine` until `now + tenure`.
    pub fn forbid(&mut self, job: JobId, machine: MachineId, now: u64) {
        self.expiry[job as usize * self.nb_machines + machine as usize] = now + self.tenure;
    }

    /// Whether assigning `job` to `machine` is currently forbidden.
    #[must_use]
    pub fn is_tabu(&self, job: JobId, machine: MachineId, now: u64) -> bool {
        self.expiry[job as usize * self.nb_machines + machine as usize] > now
    }
}

/// Configuration of the Tabu Search baseline.
#[derive(Debug, Clone)]
pub struct TabuSearch {
    /// Heuristic building the starting schedule.
    pub seeding: ConstructiveKind,
    /// Iterations a reversed move stays forbidden.
    pub tenure: u64,
    /// Candidate moves sampled per iteration.
    pub candidates: usize,
    /// Stopping condition; each applied move counts as one child.
    pub stop: StopCondition,
}

impl TabuSearch {
    /// Replaces the stopping condition.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Replaces the seeding heuristic.
    #[must_use]
    pub fn with_seeding(mut self, seeding: ConstructiveKind) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs the search through the shared engine runtime.
    ///
    /// # Panics
    ///
    /// Panics when no candidates are sampled per iteration or the stop
    /// condition is unbounded.
    #[must_use]
    pub fn run(&self, problem: &Problem, seed: u64) -> GaOutcome {
        // lint:allow(no-wall-clock-in-sim): legit wall-clock budget anchor — the paper-protocol time limit in StopCondition is opt-in and informational; deterministic runs use exact children/iteration budgets and no tick-domain value derives from this read.
        let start = Instant::now();
        let engine = self.engine(problem, seed);
        run_to_outcome(self.stop, start, engine, seed)
    }

    /// Builds the step-driven engine state (one applied move per step).
    ///
    /// # Panics
    ///
    /// Panics when no candidates are sampled per iteration.
    #[must_use]
    pub fn engine<'a>(&'a self, problem: &'a Problem, seed: u64) -> TabuSearchEngine<'a> {
        TabuSearchEngine::new(self, problem, seed)
    }

    /// Samples candidate moves, scores them in one batched
    /// [`cmags_core::EvalState::score_moves`] call, and returns the best
    /// admissible one (non-tabu, or tabu-but-aspirational) as
    /// `(job, target, fitness)`.
    fn best_candidate(
        &self,
        problem: &Problem,
        current: &Individual,
        tabu: &TabuList,
        now: u64,
        best_fitness: f64,
        rng: &mut dyn RngCore,
    ) -> Option<(JobId, MachineId, f64)> {
        let nb_machines = problem.nb_machines() as MachineId;
        if nb_machines < 2 {
            return None;
        }
        SCRATCH.with(|cell| {
            let (candidates, scores) = &mut *cell.borrow_mut();
            candidates.clear();
            for _ in 0..self.candidates {
                let job = rng.gen_range(0..problem.nb_jobs() as JobId);
                let from = current.schedule.machine_of(job);
                let mut target = rng.gen_range(0..nb_machines - 1);
                if target >= from {
                    target += 1;
                }
                candidates.push((job, target));
            }
            current
                .eval
                .score_moves(problem, &current.schedule, candidates, scores);
            let mut best: Option<(JobId, MachineId, f64)> = None;
            for (i, &(job, target)) in candidates.iter().enumerate() {
                let fitness = problem.fitness(scores.objectives(i));
                let aspiration = fitness < best_fitness;
                if tabu.is_tabu(job, target, now) && !aspiration {
                    continue;
                }
                if best.is_none_or(|(_, _, f)| fitness < f) {
                    best = Some((job, target, fitness));
                }
            }
            best
        })
    }
}

/// [`TabuSearch`] as a step-driven [`Metaheuristic`]: one applied move
/// per step (or one burned budget unit when no move exists).
pub struct TabuSearchEngine<'a> {
    config: &'a TabuSearch,
    problem: &'a Problem,
    rng: SmallRng,
    current: Individual,
    best: Individual,
    tabu: TabuList,
    children: u64,
    moves: u64,
}

impl<'a> TabuSearchEngine<'a> {
    fn new(config: &'a TabuSearch, problem: &'a Problem, seed: u64) -> Self {
        assert!(
            config.candidates > 0,
            "need at least one candidate move per iteration"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let start_schedule = config.seeding.build_seeded(problem, &mut rng);
        let current = Individual::new(problem, start_schedule);
        let tabu = TabuList::new(problem.nb_jobs(), problem.nb_machines(), config.tenure);
        Self {
            config,
            problem,
            rng,
            best: current.clone(),
            current,
            tabu,
            children: 0,
            moves: 0,
        }
    }
}

impl Metaheuristic for TabuSearchEngine<'_> {
    fn name(&self) -> &'static str {
        "Tabu"
    }

    fn step(&mut self) {
        let Some((job, target, fitness)) = self.config.best_candidate(
            self.problem,
            &self.current,
            &self.tabu,
            self.children,
            self.best.fitness,
            &mut self.rng,
        ) else {
            // Single-machine problems offer no moves; burn the budget so
            // bounded runs still terminate.
            self.children += 1;
            return;
        };
        let from = self.current.schedule.machine_of(job);
        self.current
            .eval
            .apply_move(self.problem, &mut self.current.schedule, job, target);
        self.current.fitness = fitness;
        // Forbid the reverse move: `job` may not return to `from`.
        self.tabu.forbid(job, from, self.children);
        self.children += 1;
        self.moves += 1;
        if self.current.fitness < self.best.fitness {
            self.best = self.current.clone();
        }
    }

    fn iterations(&self) -> u64 {
        self.moves
    }

    fn children(&self) -> u64 {
        self.children
    }

    fn best_fitness(&self) -> f64 {
        self.best.fitness
    }

    fn best_objectives(&self) -> Objectives {
        self.best.objectives()
    }

    fn best_schedule(&self) -> Option<&Schedule> {
        Some(&self.best.schedule)
    }

    /// Elite immigration: restarts the trajectory from the offer when
    /// it strictly beats the current point (the best-so-far follows).
    fn inject(&mut self, schedule: &Schedule) -> bool {
        crate::common::inject_trajectory(self.problem, &mut self.current, &mut self.best, schedule)
    }
}

impl BaselineEngine for TabuSearchEngine<'_> {
    fn into_best(self) -> Individual {
        self.best
    }
}

impl Default for TabuSearch {
    /// LJFR-SJFR seed, tenure 32, 24 sampled candidates, 90 s budget.
    fn default() -> Self {
        Self {
            seeding: ConstructiveKind::LjfrSjfr,
            tenure: 32,
            candidates: 24,
            stop: StopCondition::paper_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_core::evaluate;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_i_hihi.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(128, 8), 0))
    }

    fn quick() -> TabuSearch {
        TabuSearch::default().with_stop(StopCondition::children(1_000))
    }

    #[test]
    fn tabu_list_forbids_until_expiry() {
        let mut list = TabuList::new(4, 3, 5);
        assert!(!list.is_tabu(2, 1, 0));
        list.forbid(2, 1, 10);
        assert!(list.is_tabu(2, 1, 10));
        assert!(list.is_tabu(2, 1, 14));
        assert!(!list.is_tabu(2, 1, 15), "expired after tenure iterations");
        assert!(!list.is_tabu(2, 2, 12), "other machines unaffected");
        assert!(!list.is_tabu(1, 1, 12), "other jobs unaffected");
    }

    #[test]
    fn respects_children_budget() {
        let outcome = quick().run(&problem(), 1);
        assert_eq!(outcome.children, 1_000);
    }

    #[test]
    fn improves_over_its_seed() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(5);
        let seed_schedule = ConstructiveKind::LjfrSjfr.build_seeded(&p, &mut rng);
        let seed_fitness = p.fitness(evaluate(&p, &seed_schedule));
        let outcome = quick().run(&p, 5);
        assert!(
            outcome.fitness < seed_fitness,
            "tabu search ({}) must improve on LJFR-SJFR ({seed_fitness})",
            outcome.fitness
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = quick().run(&p, 2);
        let b = quick().run(&p, 2);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.fitness, b.fitness);
        let c = quick().run(&p, 3);
        assert_ne!(
            a.schedule, c.schedule,
            "different seeds explore differently"
        );
    }

    #[test]
    fn best_matches_reevaluation() {
        let p = problem();
        let outcome = quick().run(&p, 7);
        assert_eq!(outcome.objectives, evaluate(&p, &outcome.schedule));
    }

    #[test]
    fn escapes_strict_local_optima() {
        // Tabu search applies the best sampled move even when it worsens
        // the incumbent, so after converging it keeps moving. Detect that
        // by observing that the *final* fitness differs from the best
        // (the walk went past the optimum and kept exploring).
        let p = problem();
        let outcome = TabuSearch {
            tenure: 16,
            candidates: 16,
            ..TabuSearch::default()
        }
        .with_stop(StopCondition::children(4_000))
        .run(&p, 11);
        assert!(outcome.children == 4_000);
        assert!(outcome.fitness > 0.0);
    }

    #[test]
    fn single_machine_instance_terminates() {
        let etc = cmags_etc::EtcMatrix::from_rows(3, 1, vec![1.0, 2.0, 3.0]);
        let inst = cmags_etc::GridInstance::new("one", etc);
        let p = Problem::from_instance(&inst);
        let outcome = quick().with_stop(StopCondition::children(10)).run(&p, 0);
        assert_eq!(outcome.children, 10);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_candidates_rejected() {
        let mut config = quick();
        config.candidates = 0;
        let _ = config.run(&problem(), 0);
    }
}
