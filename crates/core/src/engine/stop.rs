//! Stopping conditions.
//!
//! The paper stops on wall-clock time (90 s on its 2007 hardware). For
//! reproducible tests and hardware-independent comparisons this module
//! also supports budgets in iterations and in generated children, plus a
//! target fitness; the run stops when **any** configured bound trips.

use std::time::Duration;

/// Combined stopping condition. All fields optional; empty means "run
/// forever" (rejected by the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StopCondition {
    /// Wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Maximum outer iterations (each = `#recombinations + #mutations`
    /// operator applications).
    pub max_iterations: Option<u64>,
    /// Maximum children generated (operator applications).
    pub max_children: Option<u64>,
    /// Stop as soon as best fitness reaches this value (scaled by f64
    /// bits, see [`StopCondition::target_fitness`]).
    target_fitness_bits: Option<u64>,
}

impl StopCondition {
    /// Budget of wall-clock time only.
    #[must_use]
    pub fn time(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            ..Self::default()
        }
    }

    /// The paper's 90-second budget.
    #[must_use]
    pub fn paper_time() -> Self {
        Self::time(Duration::from_secs(90))
    }

    /// Budget of outer iterations only (deterministic runs).
    #[must_use]
    pub fn iterations(n: u64) -> Self {
        Self {
            max_iterations: Some(n),
            ..Self::default()
        }
    }

    /// Budget of generated children only (deterministic runs).
    #[must_use]
    pub fn children(n: u64) -> Self {
        Self {
            max_children: Some(n),
            ..Self::default()
        }
    }

    /// Adds a wall-clock budget.
    #[must_use]
    pub fn and_time(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Adds an iteration budget.
    #[must_use]
    pub fn and_iterations(mut self, n: u64) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Adds a children budget.
    #[must_use]
    pub fn and_children(mut self, n: u64) -> Self {
        self.max_children = Some(n);
        self
    }

    /// Adds a fitness target: stop once `best_fitness <= target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is NaN.
    #[must_use]
    pub fn and_target_fitness(mut self, target: f64) -> Self {
        assert!(!target.is_nan(), "target fitness must not be NaN");
        self.target_fitness_bits = Some(target.to_bits());
        self
    }

    /// The configured fitness target, if any.
    #[must_use]
    pub fn target_fitness(&self) -> Option<f64> {
        self.target_fitness_bits.map(f64::from_bits)
    }

    /// Whether at least one bound is configured.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.time_limit.is_some()
            || self.max_iterations.is_some()
            || self.max_children.is_some()
            || self.target_fitness_bits.is_some()
    }

    /// Whether a **budget** bound (time, iterations or children) is
    /// configured. A target fitness alone counts as bounded for
    /// [`StopCondition::is_bounded`] but may never trip, so loops that
    /// must terminate (e.g. repeated portfolio rounds) require this
    /// stronger predicate.
    #[must_use]
    pub fn is_budget_bounded(&self) -> bool {
        self.time_limit.is_some() || self.max_iterations.is_some() || self.max_children.is_some()
    }

    /// Evaluates the condition.
    #[must_use]
    pub fn should_stop(
        &self,
        elapsed: Duration,
        iterations: u64,
        children: u64,
        best_fitness: f64,
    ) -> bool {
        if let Some(limit) = self.time_limit {
            if elapsed >= limit {
                return true;
            }
        }
        if let Some(max) = self.max_iterations {
            if iterations >= max {
                return true;
            }
        }
        if let Some(max) = self.max_children {
            if children >= max {
                return true;
            }
        }
        if let Some(target) = self.target_fitness() {
            if best_fitness <= target {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_stops() {
        let stop = StopCondition::default();
        assert!(!stop.is_bounded());
        assert!(!stop.should_stop(Duration::from_secs(3600), u64::MAX, u64::MAX, f64::MIN));
    }

    #[test]
    fn each_bound_trips_independently() {
        let stop = StopCondition::time(Duration::from_secs(1));
        assert!(stop.should_stop(Duration::from_secs(1), 0, 0, 0.0));
        assert!(!stop.should_stop(Duration::from_millis(999), 0, 0, 0.0));

        let stop = StopCondition::iterations(10);
        assert!(stop.should_stop(Duration::ZERO, 10, 0, 0.0));
        assert!(!stop.should_stop(Duration::ZERO, 9, 0, 0.0));

        let stop = StopCondition::children(100);
        assert!(stop.should_stop(Duration::ZERO, 0, 100, 0.0));

        let stop = StopCondition::default().and_target_fitness(5.0);
        assert!(stop.should_stop(Duration::ZERO, 0, 0, 5.0));
        assert!(!stop.should_stop(Duration::ZERO, 0, 0, 5.1));
    }

    #[test]
    fn bounds_combine_as_any() {
        let stop = StopCondition::iterations(100).and_time(Duration::from_secs(1));
        assert!(
            stop.should_stop(Duration::from_secs(2), 1, 0, 0.0),
            "time trips first"
        );
        assert!(
            stop.should_stop(Duration::ZERO, 100, 0, 0.0),
            "iterations trip first"
        );
    }

    #[test]
    fn paper_time_is_90s() {
        assert_eq!(
            StopCondition::paper_time().time_limit,
            Some(Duration::from_secs(90))
        );
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_target_rejected() {
        let _ = StopCondition::default().and_target_fitness(f64::NAN);
    }
}
