//! Schedule representation: the assignment vector of the paper (§3.2).

use std::fmt;

/// Index of a job (row of the ETC matrix).
pub type JobId = u32;
/// Index of a machine (column of the ETC matrix).
pub type MachineId = u32;

/// A feasible solution: `schedule[j] = m` assigns job `j` to machine `m`.
///
/// This is exactly the chromosome of the paper — "a vector of size
/// `nb_jobs` in which its *j*th position (an integer value) indicates the
/// machine where job *j* is assigned". Any vector whose entries are valid
/// machine indices is feasible; operators therefore never need repair
/// steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    assignment: Vec<MachineId>,
}

/// Validation error for externally supplied assignment vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The vector length differs from the problem's job count.
    WrongLength {
        /// Jobs in the vector.
        found: usize,
        /// Jobs in the problem.
        expected: usize,
    },
    /// An entry references a machine outside the problem.
    MachineOutOfRange {
        /// Offending job.
        job: JobId,
        /// Machine the vector assigned.
        machine: MachineId,
        /// Number of machines in the problem.
        nb_machines: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { found, expected } => {
                write!(
                    f,
                    "schedule has {found} entries, problem has {expected} jobs"
                )
            }
            ScheduleError::MachineOutOfRange {
                job,
                machine,
                nb_machines,
            } => write!(
                f,
                "job {job} assigned to machine {machine}, but only {nb_machines} machines exist"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Wraps an assignment vector without validation.
    ///
    /// Prefer [`Schedule::try_new`] for vectors from untrusted sources.
    #[must_use]
    pub fn from_assignment(assignment: Vec<MachineId>) -> Self {
        Self { assignment }
    }

    /// Wraps an assignment vector, validating it against problem
    /// dimensions.
    pub fn try_new(
        assignment: Vec<MachineId>,
        nb_jobs: usize,
        nb_machines: usize,
    ) -> Result<Self, ScheduleError> {
        if assignment.len() != nb_jobs {
            return Err(ScheduleError::WrongLength {
                found: assignment.len(),
                expected: nb_jobs,
            });
        }
        for (job, &machine) in assignment.iter().enumerate() {
            if machine as usize >= nb_machines {
                return Err(ScheduleError::MachineOutOfRange {
                    job: job as JobId,
                    machine,
                    nb_machines,
                });
            }
        }
        Ok(Self { assignment })
    }

    /// All jobs on one machine.
    #[must_use]
    pub fn uniform(nb_jobs: usize, machine: MachineId) -> Self {
        Self {
            assignment: vec![machine; nb_jobs],
        }
    }

    /// Number of jobs.
    #[inline]
    #[must_use]
    pub fn nb_jobs(&self) -> usize {
        self.assignment.len()
    }

    /// Machine currently hosting `job`.
    #[inline]
    #[must_use]
    pub fn machine_of(&self, job: JobId) -> MachineId {
        self.assignment[job as usize]
    }

    /// Reassigns `job` to `machine`.
    #[inline]
    pub fn assign(&mut self, job: JobId, machine: MachineId) {
        self.assignment[job as usize] = machine;
    }

    /// Exchanges the machines of two jobs.
    #[inline]
    pub fn swap_jobs(&mut self, a: JobId, b: JobId) {
        self.assignment.swap(a as usize, b as usize);
    }

    /// The raw assignment vector.
    #[must_use]
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// Iterates `(job, machine)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, MachineId)> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .map(|(j, &m)| (j as JobId, m))
    }

    /// Jobs assigned to `machine`, in job order.
    #[must_use]
    pub fn jobs_on(&self, machine: MachineId) -> Vec<JobId> {
        self.iter()
            .filter(|&(_, m)| m == machine)
            .map(|(j, _)| j)
            .collect()
    }

    /// Number of positions on which two schedules differ (Hamming
    /// distance) — the similarity metric of the Struggle GA.
    ///
    /// # Panics
    ///
    /// Panics if the schedules have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &Schedule) -> usize {
        assert_eq!(self.assignment.len(), other.assignment.len());
        self.assignment
            .iter()
            .zip(&other.assignment)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Count of jobs per machine.
    #[must_use]
    pub fn load_histogram(&self, nb_machines: usize) -> Vec<usize> {
        let mut histogram = vec![0usize; nb_machines];
        for &m in &self.assignment {
            histogram[m as usize] += 1;
        }
        histogram
    }
}

impl From<Vec<MachineId>> for Schedule {
    fn from(assignment: Vec<MachineId>) -> Self {
        Self::from_assignment(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = Schedule::from_assignment(vec![0, 1, 2, 1]);
        assert_eq!(s.nb_jobs(), 4);
        assert_eq!(s.machine_of(2), 2);
        assert_eq!(s.jobs_on(1), vec![1, 3]);
    }

    #[test]
    fn try_new_validates() {
        assert!(Schedule::try_new(vec![0, 1], 2, 2).is_ok());
        assert_eq!(
            Schedule::try_new(vec![0], 2, 2).unwrap_err(),
            ScheduleError::WrongLength {
                found: 1,
                expected: 2
            }
        );
        assert_eq!(
            Schedule::try_new(vec![0, 5], 2, 2).unwrap_err(),
            ScheduleError::MachineOutOfRange {
                job: 1,
                machine: 5,
                nb_machines: 2
            }
        );
    }

    #[test]
    fn mutators() {
        let mut s = Schedule::uniform(3, 0);
        s.assign(1, 2);
        assert_eq!(s.assignment(), &[0, 2, 0]);
        s.swap_jobs(0, 1);
        assert_eq!(s.assignment(), &[2, 0, 0]);
    }

    #[test]
    fn hamming() {
        let a = Schedule::from_assignment(vec![0, 1, 2]);
        let b = Schedule::from_assignment(vec![0, 2, 2]);
        assert_eq!(a.hamming_distance(&b), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn load_histogram_counts() {
        let s = Schedule::from_assignment(vec![0, 1, 1, 3]);
        assert_eq!(s.load_histogram(4), vec![1, 2, 0, 1]);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = Schedule::try_new(vec![9], 1, 4).unwrap_err();
        assert!(e.to_string().contains("machine 9"));
    }
}
