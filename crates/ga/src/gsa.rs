//! Genetic Simulated Annealing (Braun et al. 2001).
//!
//! The GSA of the eleven-mapper study is a generational GA whose
//! survivor selection uses an SA-style **threshold acceptance** instead
//! of elitist comparison: an offspring replaces its parent when its
//! fitness is below `parent + temperature`, and the system temperature
//! decays geometrically each generation (Braun: initial temperature =
//! the average makespan of the initial population, reduced 10 % per
//! iteration). Early generations therefore accept sideways and mildly
//! worse moves population-wide; late generations behave like a plain
//! elitist GA.

use std::time::Instant;

use cmags_cma::{Individual, StopCondition};
use cmags_core::diversity::DiversitySample;
use cmags_core::engine::Metaheuristic;
use cmags_core::{FitnessWeights, Objectives, Problem, Schedule};
use cmags_heuristics::constructive::ConstructiveKind;
use cmags_heuristics::ops::{mutate_move, Crossover};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{
    best_index, individual_with_weights, init_population, run_to_outcome, BaselineEngine,
};
use crate::GaOutcome;

/// Braun et al.'s GSA: generational GA with per-individual threshold
/// acceptance under a geometrically cooling temperature.
#[derive(Debug, Clone)]
pub struct GeneticSimulatedAnnealing {
    /// Population size (Braun: 200).
    pub population_size: usize,
    /// Probability that a pair is crossed.
    pub crossover_rate: f64,
    /// Probability that an offspring is mutated.
    pub mutation_rate: f64,
    /// Seed heuristic injected once (Braun: Min-Min).
    pub heuristic_seed: Option<ConstructiveKind>,
    /// Fitness weights (Braun optimised makespan only; the harness
    /// default follows that).
    pub weights: FitnessWeights,
    /// Temperature decay per generation (Braun: 0.9).
    pub cooling: f64,
    /// Stopping condition.
    pub stop: StopCondition,
}

impl Default for GeneticSimulatedAnnealing {
    fn default() -> Self {
        Self {
            population_size: 200,
            crossover_rate: 0.6,
            mutation_rate: 0.4,
            heuristic_seed: Some(ConstructiveKind::MinMin),
            weights: FitnessWeights::makespan_only(),
            cooling: 0.9,
            stop: StopCondition::paper_time(),
        }
    }
}

impl GeneticSimulatedAnnealing {
    /// Replaces the stopping condition.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Replaces the fitness weights.
    #[must_use]
    pub fn with_weights(mut self, weights: FitnessWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Runs the GSA through the shared engine runtime.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unbounded, the population is
    /// smaller than two, or cooling is outside `(0, 1)`.
    #[must_use]
    pub fn run(&self, problem: &Problem, seed: u64) -> GaOutcome {
        // lint:allow(no-wall-clock-in-sim): legit wall-clock budget anchor — the paper-protocol time limit in StopCondition is opt-in and informational; deterministic runs use exact children/iteration budgets and no tick-domain value derives from this read.
        let start = Instant::now();
        let engine = self.engine(problem, seed);
        run_to_outcome(self.stop, start, engine, seed)
    }

    /// Builds the step-driven engine state (one bred slot per step).
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than two or cooling is
    /// outside `(0, 1)`.
    #[must_use]
    pub fn engine<'a>(
        &'a self,
        problem: &'a Problem,
        seed: u64,
    ) -> GeneticSimulatedAnnealingEngine<'a> {
        GeneticSimulatedAnnealingEngine::new(self, problem, seed)
    }
}

/// [`GeneticSimulatedAnnealing`] as a step-driven [`Metaheuristic`]:
/// each step breeds the offspring of one population slot and applies
/// threshold acceptance; the temperature cools once per full sweep of
/// the population (one generation).
pub struct GeneticSimulatedAnnealingEngine<'a> {
    config: &'a GeneticSimulatedAnnealing,
    problem: &'a Problem,
    rng: SmallRng,
    population: Vec<Individual>,
    best: Individual,
    temperature: f64,
    slot: usize,
    generations: u64,
    children: u64,
}

impl<'a> GeneticSimulatedAnnealingEngine<'a> {
    fn new(config: &'a GeneticSimulatedAnnealing, problem: &'a Problem, seed: u64) -> Self {
        assert!(
            config.population_size >= 2,
            "population needs at least two individuals"
        );
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must lie in (0, 1)"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let population = init_population(
            problem,
            config.population_size,
            config.heuristic_seed,
            config.weights,
            &mut rng,
        );
        let best = population[best_index(&population)].clone();
        // Braun: initial system temperature = average initial fitness
        // (their fitness is the makespan).
        let temperature =
            population.iter().map(|i| i.fitness).sum::<f64>() / population.len() as f64;
        Self {
            config,
            problem,
            rng,
            population,
            best,
            temperature,
            slot: 0,
            generations: 0,
            children: 0,
        }
    }
}

impl Metaheuristic for GeneticSimulatedAnnealingEngine<'_> {
    fn name(&self) -> &'static str {
        "GSA"
    }

    fn step(&mut self) {
        // Breed one offspring for the current slot; threshold acceptance
        // decides whether it replaces the incumbent of that slot.
        let slot = self.slot;
        let partner = self.rng.gen_range(0..self.config.population_size);
        let mut child_schedule = if self.rng.gen::<f64>() < self.config.crossover_rate {
            Crossover::OnePoint.apply(
                &self.population[slot].schedule,
                &self.population[partner].schedule,
                &mut self.rng,
            )
        } else {
            self.population[slot].schedule.clone()
        };
        if self.rng.gen::<f64>() < self.config.mutation_rate {
            let _ = mutate_move(self.problem, &mut child_schedule, &mut self.rng);
        }
        let child = individual_with_weights(self.problem, child_schedule, self.config.weights);
        self.children += 1;
        if child.fitness < self.best.fitness {
            self.best = child.clone();
        }
        if child.fitness < self.population[slot].fitness + self.temperature {
            self.population[slot] = child;
        }

        self.slot += 1;
        if self.slot == self.config.population_size {
            self.slot = 0;
            self.temperature *= self.config.cooling;
            self.generations += 1;
        }
    }

    fn iterations(&self) -> u64 {
        self.generations
    }

    fn children(&self) -> u64 {
        self.children
    }

    fn best_fitness(&self) -> f64 {
        self.best.fitness
    }

    fn best_objectives(&self) -> Objectives {
        self.best.objectives()
    }

    fn best_schedule(&self) -> Option<&Schedule> {
        Some(&self.best.schedule)
    }

    fn inject(&mut self, schedule: &Schedule) -> bool {
        crate::common::inject_elite(
            self.problem,
            self.config.weights,
            &mut self.population,
            &mut self.best,
            schedule,
        )
    }

    fn population_diversity(&self) -> Option<DiversitySample> {
        crate::common::population_diversity_of(self.problem, &self.population)
    }
}

impl BaselineEngine for GeneticSimulatedAnnealingEngine<'_> {
    fn into_best(self) -> Individual {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmags_core::evaluate;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_c_hihi.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(64, 8), 0))
    }

    fn quick() -> GeneticSimulatedAnnealing {
        GeneticSimulatedAnnealing {
            population_size: 16,
            ..GeneticSimulatedAnnealing::default()
        }
        .with_stop(StopCondition::children(800))
    }

    #[test]
    fn respects_children_budget() {
        let outcome = quick().run(&problem(), 1);
        assert_eq!(outcome.children, 800);
        assert_eq!(outcome.generations, 800 / 16);
    }

    #[test]
    fn improves_over_random_population_average() {
        let p = problem();
        let outcome = quick().run(&p, 2);
        // The Min-Min seed is already strong; GSA must at least match it.
        let min_min = ConstructiveKind::MinMin.build(&p);
        let seed_makespan = evaluate(&p, &min_min).makespan;
        assert!(
            outcome.objectives.makespan <= seed_makespan,
            "GSA {} must not lose its Min-Min seed {seed_makespan}",
            outcome.objectives.makespan
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = quick().run(&p, 9);
        let b = quick().run(&p, 9);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.fitness, b.fitness);
    }

    #[test]
    fn best_matches_reevaluation() {
        let p = problem();
        let outcome = quick().run(&p, 3);
        assert_eq!(outcome.objectives, evaluate(&p, &outcome.schedule));
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn invalid_cooling_rejected() {
        let mut config = quick();
        config.cooling = 0.0;
        let _ = config.run(&problem(), 0);
    }
}
