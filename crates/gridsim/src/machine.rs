//! Machine pool with dynamic membership.
//!
//! Machine ids are dense, monotone and never recycled, so the pool is a
//! **slab**: a flat vector indexed directly by id (`O(1)` access on the
//! event hot path, no tree walks), plus a sorted vector of alive ids
//! for deterministic id-order iteration and snapshots. Joins are O(1);
//! departures are O(alive) for the id-list splice — churn events are
//! orders of magnitude rarer than job events, so the hot loop never
//! pays for it.

use std::collections::VecDeque;

use crate::event::EventToken;
use crate::workload::MachineSpec;

/// The job a machine is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Job identifier.
    pub job: u64,
    /// When the current attempt's scheduled event fires, in ticks: the
    /// planned completion, or an earlier transient-failure instant if
    /// the fault layer drew one inside the attempt.
    pub finish: i64,
    /// Planned completion time absent failure, in ticks. Ready-time
    /// snapshots use this so schedulers plan against intended work, and
    /// checkpoint salvage measures attempt progress against it. Equal
    /// to `finish` when the attempt will not fail.
    pub planned: i64,
    /// Token of the scheduled `JobFinish`/`JobFail` event, so a
    /// departure or crash can cancel it instead of leaving a stale
    /// event for the handler to re-validate.
    pub finish_event: EventToken,
}

/// Execution state of one grid machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Static characteristics.
    pub spec: MachineSpec,
    /// Job ids queued on this machine, executed front-to-back (the
    /// dispatcher enqueues each batch in SPT order). A deque: starts
    /// pop the front in O(1) whatever the backlog depth.
    pub queue: VecDeque<u64>,
    /// The running job, if any.
    pub running: Option<RunningJob>,
    /// Sum of busy time accumulated so far (for utilisation).
    pub busy_time: f64,
    /// Time the machine joined the grid.
    pub joined_at: f64,
    /// Crash/repair draws taken so far: indexes the machine's dedicated
    /// reliability stream so every MTBF/MTTR gap is a fresh draw.
    pub crash_seq: u32,
    /// Token of the machine's armed `MachineCrash` event, if the
    /// failure model schedules crashes; cancelled on departure and at
    /// drain quiescence.
    pub next_crash: Option<EventToken>,
    /// Consecutive failed attempts on this machine (crashes and
    /// transient failures); a success resets it. Feeds the blacklist.
    pub consecutive_failures: u32,
    /// The machine is quarantined from new assignments until this tick
    /// (blacklist probation); zero means never blacklisted.
    pub blacklisted_until: i64,
    /// Memoized [`ready_time`](Self::ready_time): the exact left-fold
    /// value of the last recompute, extended in place by
    /// [`enqueue`](Self::enqueue) and dropped by
    /// [`invalidate_ready`](Self::invalidate_ready) on any structural
    /// change left of the queue tail (start/finish/fail/crash). Only
    /// populated while a job is running — an idle machine's ready time
    /// is the activation's `now`, which changes between queries.
    ready_cache: Option<f64>,
}

impl Machine {
    /// Creates an idle machine.
    #[must_use]
    pub fn new(spec: MachineSpec, now: f64) -> Self {
        Self {
            spec,
            queue: VecDeque::new(),
            running: None,
            busy_time: 0.0,
            joined_at: now,
            crash_seq: 0,
            next_crash: None,
            consecutive_failures: 0,
            blacklisted_until: 0,
            ready_cache: None,
        }
    }

    /// When the machine will have finished everything currently committed
    /// to it (running job + queue), given a closure mapping job id to its
    /// ETC on this machine. This is the machine's **ready time** for the
    /// next scheduler activation (paper §2). `finish_time` converts the
    /// running job's tick finish to seconds (the simulation clock's
    /// conversion, so snapshots agree with the event times).
    ///
    /// Memoized: the full queue fold runs only when the cache is cold
    /// (the machine's commitments changed since the last activation);
    /// an untouched machine answers in O(1) instead of rescanning its
    /// whole backlog every activation. The cached value is the *exact*
    /// fold — [`enqueue`](Self::enqueue) extends it bit-identically and
    /// every structural change invalidates it — so snapshots are
    /// bit-identical with and without the cache (debug builds assert
    /// coherence against [`ready_time_recomputed`](Self::ready_time_recomputed)
    /// at every chaos-harness invariant check).
    #[must_use]
    pub fn ready_time(&mut self, now: f64, etc_of: impl Fn(u64) -> f64) -> f64 {
        if let Some(cached) = self.ready_cache {
            debug_assert_eq!(
                cached.to_bits(),
                self.ready_time_recomputed(now, &etc_of).to_bits(),
                "stale ready-time cache on machine {}",
                self.spec.id
            );
            return cached;
        }
        let ready = self.ready_time_recomputed(now, etc_of);
        if self.running.is_some() {
            // Only a busy machine's ready time is a function of its own
            // state alone (planned completion + queue); an idle one
            // starts the fold at the caller's `now`.
            self.ready_cache = Some(ready);
        }
        ready
    }

    /// The uncached ready-time fold: the reference the memo in
    /// [`ready_time`](Self::ready_time) is pinned against.
    #[must_use]
    pub fn ready_time_recomputed(&self, now: f64, etc_of: impl Fn(u64) -> f64) -> f64 {
        let mut ready = match self.running {
            // Plan against the intended completion: an attempt that
            // will fail early still owes the machine the planned work
            // (the retry lands somewhere, usually here).
            Some(running) => crate::sim::ticks_to_time(running.planned),
            None => now,
        };
        for &job in &self.queue {
            ready += etc_of(job);
        }
        ready
    }

    /// Appends a job to the machine's queue, extending the memoized
    /// ready time by the job's ETC — the exact operation the full fold
    /// would perform on its last element, so the cache stays
    /// bit-identical to a recompute.
    pub fn enqueue(&mut self, job: u64, etc: f64) {
        self.queue.push_back(job);
        if let Some(cached) = &mut self.ready_cache {
            *cached += etc;
        }
    }

    /// Drops the memoized ready time. Must be called whenever the
    /// running job or the queue changes anywhere left of the tail
    /// (job start, finish, transient failure, crash, recovery,
    /// resubmission) — appends go through [`enqueue`](Self::enqueue)
    /// instead.
    pub fn invalidate_ready(&mut self) {
        self.ready_cache = None;
    }

    /// The memoized ready time, if valid — exposed for the
    /// chaos-harness coherence check.
    #[must_use]
    pub fn ready_cache(&self) -> Option<f64> {
        self.ready_cache
    }

    /// Whether the machine has nothing to do.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.queue.is_empty()
    }
}

/// The set of alive machines: a slab indexed by id, with a sorted
/// alive-id list for deterministic iteration. Crashed machines move to
/// a disjoint sorted `down` list — quarantined but not departed: their
/// slot (identity, accumulated busy time, reliability stream cursor)
/// survives until [`recover`](Self::recover) re-admits them.
#[derive(Debug, Default)]
pub struct MachinePool {
    /// Slot per ever-issued id; `None` for departed or reserved ids.
    /// Crashed machines keep their slot.
    slots: Vec<Option<Machine>>,
    /// Alive (schedulable) ids, ascending.
    alive: Vec<u64>,
    /// Crashed (quarantined, under repair) ids, ascending.
    down: Vec<u64>,
}

impl MachinePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the next machine id without bringing the machine up.
    /// Used to stamp `MachineJoin` events with their real identity at
    /// schedule time; the reservation is filled by
    /// [`join_reserved`](Self::join_reserved) when the event fires.
    pub fn reserve_id(&mut self) -> u64 {
        let id = self.slots.len() as u64;
        self.slots.push(None);
        id
    }

    /// Adds a machine with the given spec characteristics, returning its
    /// id.
    pub fn join(&mut self, slowness: f64, now: f64) -> u64 {
        let id = self.reserve_id();
        self.join_reserved(id, slowness, now);
        id
    }

    /// Brings up a machine on an id previously returned by
    /// [`reserve_id`](Self::reserve_id).
    ///
    /// # Panics
    ///
    /// Panics if the id was never reserved or is already alive.
    pub fn join_reserved(&mut self, id: u64, slowness: f64, now: f64) {
        let slot = self
            .slots
            .get_mut(id as usize)
            .expect("join of an unreserved machine id");
        assert!(slot.is_none(), "machine {id} is already alive");
        *slot = Some(Machine::new(MachineSpec { id, slowness }, now));
        // Ids are issued in increasing order and a reserved id joins
        // before the next reservation is made, so pushing keeps the
        // alive list sorted.
        debug_assert!(self.alive.last().is_none_or(|&last| last < id));
        self.alive.push(id);
    }

    /// Removes a machine, returning it (with any queued/running work) if
    /// it was alive.
    pub fn leave(&mut self, id: u64) -> Option<Machine> {
        let machine = self.slots.get_mut(id as usize)?.take()?;
        let pos = self
            .alive
            .binary_search(&id)
            .expect("alive list out of sync");
        self.alive.remove(pos);
        Some(machine)
    }

    /// Immutable access to a machine.
    #[inline]
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&Machine> {
        self.slots.get(id as usize)?.as_ref()
    }

    /// Mutable access to a machine.
    #[inline]
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Machine> {
        self.slots.get_mut(id as usize)?.as_mut()
    }

    /// Alive machines in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Machine> {
        self.alive
            .iter()
            .map(|&id| self.slots[id as usize].as_ref().expect("alive machine"))
    }

    /// Number of alive machines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether no machines are alive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Ids of alive machines, ascending — a borrow, so the hot path
    /// copies it into reusable scratch instead of allocating.
    #[must_use]
    pub fn ids(&self) -> &[u64] {
        &self.alive
    }

    /// Quarantines a crashed machine: removed from the alive list (so
    /// schedulers and departures no longer see it) but its slot
    /// survives. Returns the work it was holding — the queued job ids
    /// and the running job, both stripped from the machine — or `None`
    /// if the id is not alive.
    pub fn crash(&mut self, id: u64) -> Option<(VecDeque<u64>, Option<RunningJob>)> {
        let pos = self.alive.binary_search(&id).ok()?;
        self.alive.remove(pos);
        let down_pos = self
            .down
            .binary_search(&id)
            .expect_err("machine both alive and down");
        self.down.insert(down_pos, id);
        let machine = self.slots[id as usize]
            .as_mut()
            .expect("crashed machine has a slot");
        machine.invalidate_ready();
        Some((std::mem::take(&mut machine.queue), machine.running.take()))
    }

    /// Re-admits a repaired machine to the alive list under its
    /// original identity.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not currently down.
    pub fn recover(&mut self, id: u64) {
        let pos = self
            .down
            .binary_search(&id)
            .expect("recover of an up machine");
        self.down.remove(pos);
        let alive_pos = self
            .alive
            .binary_search(&id)
            .expect_err("machine both alive and down");
        self.alive.insert(alive_pos, id);
    }

    /// Whether the machine is crashed and under repair.
    #[must_use]
    pub fn is_down(&self, id: u64) -> bool {
        self.down.binary_search(&id).is_ok()
    }

    /// Ids of crashed machines, ascending.
    #[must_use]
    pub fn down_ids(&self) -> &[u64] {
        &self.down
    }

    /// Structural invariants of the pool, checked allocation-free (the
    /// chaos harness runs this every scheduler activation inside the
    /// hot loop's allocation budget): both id lists strictly ascending,
    /// disjoint, every listed id backed by a populated slot, and no
    /// down machine holding work (a crash strips its queue and running
    /// job).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_consistency(&self) {
        for list in [&self.alive, &self.down] {
            for pair in list.windows(2) {
                assert!(pair[0] < pair[1], "machine id list out of order");
            }
            for &id in list {
                assert!(
                    self.slots.get(id as usize).is_some_and(Option::is_some),
                    "listed machine {id} has no slot"
                );
            }
        }
        // Disjointness by a two-pointer walk over the sorted lists.
        let (mut a, mut d) = (0, 0);
        while a < self.alive.len() && d < self.down.len() {
            match self.alive[a].cmp(&self.down[d]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => d += 1,
                std::cmp::Ordering::Equal => {
                    panic!("machine {} both alive and down", self.alive[a])
                }
            }
        }
        for &id in &self.down {
            let machine = self.slots[id as usize].as_ref().expect("checked above");
            assert!(machine.is_idle(), "down machine {id} still holds work");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_assigns_increasing_ids() {
        let mut pool = MachinePool::new();
        let a = pool.join(2.0, 0.0);
        let b = pool.join(3.0, 1.0);
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.ids(), &[0, 1]);
    }

    #[test]
    fn leave_returns_machine_with_work() {
        let mut pool = MachinePool::new();
        let id = pool.join(1.0, 0.0);
        pool.get_mut(id).unwrap().queue.push_back(42);
        let gone = pool.leave(id).unwrap();
        assert_eq!(gone.queue, vec![42]);
        assert!(pool.is_empty());
        assert!(pool.leave(id).is_none());
    }

    #[test]
    fn ready_time_accounts_running_and_queue() {
        let mut machine = Machine::new(
            MachineSpec {
                id: 0,
                slowness: 1.0,
            },
            0.0,
        );
        // Idle: ready now.
        assert_eq!(machine.ready_time(5.0, |_| 1.0), 5.0);
        // Running until t=10 plus two queued jobs of ETC 3 each.
        machine.running = Some(RunningJob {
            job: 1,
            finish: crate::sim::time_to_ticks(10.0),
            planned: crate::sim::time_to_ticks(10.0),
            finish_event: 0,
        });
        machine.queue = VecDeque::from([2, 3]);
        assert_eq!(machine.ready_time(5.0, |_| 3.0), 16.0);
    }

    #[test]
    fn ready_time_uses_the_planned_completion_under_failure() {
        // An attempt that will fail at t=4 still owes the machine its
        // planned work until t=10: snapshots plan against intent.
        let mut machine = Machine::new(
            MachineSpec {
                id: 0,
                slowness: 1.0,
            },
            0.0,
        );
        machine.running = Some(RunningJob {
            job: 1,
            finish: crate::sim::time_to_ticks(4.0),
            planned: crate::sim::time_to_ticks(10.0),
            finish_event: 0,
        });
        assert_eq!(machine.ready_time(0.0, |_| 0.0), 10.0);
    }

    #[test]
    fn ready_cache_extends_and_invalidates_bit_identically() {
        let mut machine = Machine::new(
            MachineSpec {
                id: 3,
                slowness: 2.0,
            },
            0.0,
        );
        let etc_of = |job: u64| 0.1 * (job as f64 + 1.0);
        // Idle machines never cache: the fold starts at `now`.
        assert_eq!(machine.ready_time(5.0, etc_of), 5.0);
        assert!(machine.ready_cache().is_none());
        machine.running = Some(RunningJob {
            job: 0,
            finish: crate::sim::time_to_ticks(7.0),
            planned: crate::sim::time_to_ticks(7.0),
            finish_event: 0,
        });
        // First busy query populates the memo.
        let first = machine.ready_time(0.0, etc_of);
        assert_eq!(machine.ready_cache(), Some(first));
        // Appends extend the memo exactly as a recompute would fold.
        for job in 1..=9 {
            machine.enqueue(job, etc_of(job));
            assert_eq!(
                machine.ready_cache().unwrap().to_bits(),
                machine.ready_time_recomputed(0.0, etc_of).to_bits(),
                "cache must stay the exact left-fold after enqueue {job}"
            );
        }
        // Structural change: drop and re-derive.
        machine.queue.pop_front();
        machine.invalidate_ready();
        assert!(machine.ready_cache().is_none());
        let again = machine.ready_time(0.0, etc_of);
        assert_eq!(
            again.to_bits(),
            machine.ready_time_recomputed(0.0, etc_of).to_bits()
        );
    }

    #[test]
    fn crash_invalidates_ready_cache() {
        let mut pool = MachinePool::new();
        let a = pool.join(1.0, 0.0);
        pool.join(1.0, 0.0);
        let machine = pool.get_mut(a).unwrap();
        machine.running = Some(RunningJob {
            job: 1,
            finish: crate::sim::time_to_ticks(4.0),
            planned: crate::sim::time_to_ticks(4.0),
            finish_event: 0,
        });
        let _ = machine.ready_time(0.0, |_| 1.0);
        assert!(pool.get(a).unwrap().ready_cache().is_some());
        pool.crash(a);
        assert!(pool.get(a).unwrap().ready_cache().is_none());
    }

    #[test]
    fn ids_do_not_recycle() {
        let mut pool = MachinePool::new();
        let a = pool.join(1.0, 0.0);
        pool.leave(a);
        let b = pool.join(1.0, 1.0);
        assert_ne!(a, b, "machine ids must stay unique across churn");
    }

    #[test]
    fn crash_quarantines_without_departing() {
        let mut pool = MachinePool::new();
        let a = pool.join(1.0, 0.0);
        let b = pool.join(2.0, 0.0);
        pool.get_mut(a).unwrap().queue.push_back(5);
        pool.get_mut(a).unwrap().busy_time = 7.5;
        let (orphans, running) = pool.crash(a).unwrap();
        assert_eq!(orphans, vec![5]);
        assert!(running.is_none());
        assert_eq!(pool.ids(), &[b], "crashed machine leaves the alive list");
        assert_eq!(pool.down_ids(), &[a]);
        assert!(pool.is_down(a));
        assert!(pool.crash(a).is_none(), "a down machine cannot re-crash");
        pool.check_consistency();
        pool.recover(a);
        assert_eq!(pool.ids(), &[a, b], "recovery restores id order");
        assert!(pool.down_ids().is_empty());
        // Identity survives the crash: accumulated state is intact.
        assert_eq!(pool.get(a).unwrap().busy_time, 7.5);
        pool.check_consistency();
    }

    #[test]
    #[should_panic(expected = "still holds work")]
    fn consistency_rejects_a_down_machine_with_work() {
        let mut pool = MachinePool::new();
        let a = pool.join(1.0, 0.0);
        pool.join(2.0, 0.0);
        pool.crash(a);
        pool.get_mut(a).unwrap().queue.push_back(9);
        pool.check_consistency();
    }

    #[test]
    fn reserved_ids_join_later() {
        let mut pool = MachinePool::new();
        pool.join(1.0, 0.0);
        let reserved = pool.reserve_id();
        assert_eq!(reserved, 1);
        assert_eq!(pool.len(), 1, "a reservation is not alive yet");
        assert!(pool.get(reserved).is_none());
        pool.join_reserved(reserved, 4.0, 2.0);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(reserved).unwrap().spec.slowness, 4.0);
        assert_eq!(pool.ids(), &[0, 1]);
    }
}
