//! Racing-portfolio benchmark: the adaptive portfolio runtime against
//! the best single engine at **equal total children budget**, across
//! ETC consistency classes and the generated 4096×64 scenario.
//!
//! Two layers:
//!
//! * `portfolio_*` timing groups — wall-clock cost of a whole race
//!   (criterion), the number to watch when touching the round loop;
//! * a quality comparison printed as `portfolio-quality` lines (and
//!   recorded in `BENCH_portfolio.json`): the portfolio's final fitness
//!   vs. every single engine given the same total children the race
//!   actually spent. The portfolio must match or beat the best single
//!   engine on most classes — that is the whole point of racing.
//!
//! Set `PORTFOLIO_BENCH_QUICK=1` for the CI smoke configuration (small
//! instance, small budgets, two samples).

use std::hint::black_box;

use cmags_bench::experiments::large_scenario;
use cmags_bench::runner::{roster, Algo};
use cmags_cma::{CmaConfig, StopCondition};
use cmags_core::{FitnessWeights, Objectives, Problem};
use cmags_etc::{braun, InstanceClass};
use cmags_ga::{
    BraunGa, GeneticSimulatedAnnealing, PanmicticMa, SimulatedAnnealing, SteadyStateGa, StruggleGa,
    TabuSearch,
};
use cmags_portfolio::{race, PortfolioConfig};
use criterion::{criterion_group, criterion_main, Criterion};

/// The iterative line-up racing in the portfolio: all eight scalarised
/// engines, every configurable one under the problem's λ-weights so the
/// uniform ranking is also each engine's own objective.
fn lineup() -> Vec<Algo> {
    vec![
        Algo::Cma(CmaConfig::paper()),
        Algo::BraunGa(BraunGa::default().with_weights(FitnessWeights::default())),
        Algo::SteadyState(SteadyStateGa::default()),
        Algo::Struggle(StruggleGa::default()),
        Algo::Panmictic(PanmicticMa::default()),
        Algo::Sa(SimulatedAnnealing::default()),
        Algo::Tabu(TabuSearch::default()),
        Algo::Gsa(GeneticSimulatedAnnealing::default().with_weights(FitnessWeights::default())),
    ]
}

fn problem(class: &str, jobs: u32, machines: u32) -> Problem {
    let class: InstanceClass = class.parse().expect("valid label");
    Problem::from_instance(&braun::generate(class.with_dims(jobs, machines), 0))
}

/// Runs one portfolio race and the equal-budget single-engine field;
/// prints the comparison and returns (portfolio fitness, best single
/// fitness, best single name).
fn quality_comparison(p: &Problem, budget: u64, seed: u64) -> (f64, f64, String) {
    let algos = lineup();
    let config = PortfolioConfig::successive_halving(algos.len(), budget);
    let outcome = race(&config, roster(p, &algos, seed), |o| p.fitness(o));
    let spent = outcome.total_children;

    let mut best_single = f64::INFINITY;
    let mut best_name = String::new();
    for algo in &algos {
        let result = algo
            .clone()
            .with_stop(StopCondition::children(spent))
            .run(p, seed);
        let fitness = p.fitness(Objectives {
            makespan: result.makespan,
            flowtime: result.flowtime,
        });
        if fitness < best_single {
            best_single = fitness;
            best_name = algo.name();
        }
    }
    println!(
        "portfolio-quality instance={} budget={} portfolio={:.1} (winner {}) best_single={:.1} ({}) delta_pct={:+.3}",
        p.name(),
        spent,
        outcome.best_score,
        outcome.winner_name,
        best_single,
        best_name,
        (outcome.best_score - best_single) / best_single * 100.0,
    );
    (outcome.best_score, best_single, best_name)
}

fn bench_portfolio(c: &mut Criterion) {
    let quick = std::env::var_os("PORTFOLIO_BENCH_QUICK").is_some();
    let (jobs, machines, race_budget) = if quick {
        (96, 8, 300)
    } else {
        (512, 16, 2_000)
    };

    // --- Timing: one full race (including engine initialisation). ---
    let p = problem("u_c_hihi.0", jobs, machines);
    let mut group = c.benchmark_group(format!("portfolio_{jobs}x{machines}"));
    group.sample_size(if quick { 2 } else { 10 });
    group.bench_function(format!("race_{race_budget}_children"), |b| {
        let algos = lineup();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = PortfolioConfig::successive_halving(algos.len(), race_budget);
            let outcome = race(&config, roster(&p, &algos, seed), |o| p.fitness(o));
            black_box(outcome.best_score)
        });
    });
    group.bench_function(format!("single_cma_{race_budget}_children"), |b| {
        let config = CmaConfig::paper().with_stop(StopCondition::children(race_budget));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(config.run(&p, seed).fitness)
        });
    });
    group.finish();

    // --- Quality at equal total budget, across consistency classes. ---
    let quality_budget = if quick { 300 } else { 6_000 };
    let classes = ["u_c_hihi.0", "u_i_hihi.0", "u_s_hihi.0", "u_c_lolo.0"];
    let mut won = 0usize;
    for class in classes {
        let p = problem(class, jobs, machines);
        let (portfolio, best_single, _) = quality_comparison(&p, quality_budget, 1);
        // "Matching" = within 0.5 % — the tables' tolerance for
        // equal-quality results.
        if portfolio <= best_single * 1.005 {
            won += 1;
        }
    }
    println!(
        "portfolio-quality summary: matched-or-beat best single engine on {won}/{} classes",
        classes.len()
    );

    if !quick {
        // The generated large-grid scenario (children are ~20× more
        // expensive here, so the budget is scaled down).
        let large = large_scenario();
        let _ = quality_comparison(&large, 800, 1);
    }
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
