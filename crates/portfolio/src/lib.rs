//! # cmags-portfolio — deterministic racing-portfolio runtime
//!
//! The reproduced paper's cMA wins on some ETC consistency classes and
//! loses to other heuristics on others (its Tables 1–5); the dynamic
//! scheduling literature draws the general conclusion that the best
//! heuristic depends on the workload regime. This crate operationalises
//! that observation: instead of betting one batch on one engine, a
//! **portfolio** races several [`Metaheuristic`](cmags_core::engine::Metaheuristic) engines against one
//! shared budget and lets the workload pick the winner.
//!
//! The runtime advances every contender in synchronised **rounds**:
//!
//! * each live engine receives an exact per-round budget (children or
//!   iterations) enforced by the shared [`cmags_core::engine::Runner`];
//! * at each round barrier the contenders are ranked by a caller-supplied
//!   uniform score over their best objectives (engines may scalarise
//!   internally however they like) and, under **successive halving**,
//!   the worse half is frozen;
//! * surviving engines then exchange elites through the warm-start hooks
//!   ([`best_schedule`](cmags_core::engine::Metaheuristic::best_schedule) →
//!   [`inject`](cmags_core::engine::Metaheuristic::inject)):
//!   [`Sharing::Broadcast`] migrates the global best into every
//!   survivor (racing mode), [`Sharing::Ring`] migrates each survivor's
//!   best to its ring successor (island mode — `cmags_cma::islands`
//!   runs on exactly this configuration).
//!
//! ## Determinism
//!
//! A race is **bit-identical across thread counts** by construction:
//! every engine owns its RNG (seed it with [`entry_seed`] to split
//! per-entry streams off one master seed), rounds are barriers, and all
//! ranking/elimination/sharing decisions happen on the coordinating
//! thread with index-ordered tie-breaking. Worker threads only decide
//! *where* an engine runs, never *what* it computes. The one exception
//! is an optional wall-clock bound in [`PortfolioConfig::stop`] — a
//! time limit reintroduces hardware nondeterminism, exactly as it does
//! for a single engine.
//!
//! ## Example
//!
//! ```
//! use cmags_core::engine::Metaheuristic;
//! use cmags_core::Objectives;
//! use cmags_portfolio::{race, Contender, PortfolioConfig, Sharing};
//!
//! /// Toy engine: halves its fitness every step.
//! struct Halver {
//!     value: f64,
//!     steps: u64,
//! }
//! impl Metaheuristic for Halver {
//!     fn name(&self) -> &'static str { "halver" }
//!     fn step(&mut self) { self.value /= 2.0; self.steps += 1; }
//!     fn iterations(&self) -> u64 { self.steps }
//!     fn children(&self) -> u64 { self.steps }
//!     fn best_fitness(&self) -> f64 { self.value }
//!     fn best_objectives(&self) -> Objectives {
//!         Objectives { makespan: self.value, flowtime: self.value }
//!     }
//! }
//!
//! let contenders = vec![
//!     Contender::new("slow", Box::new(Halver { value: 1000.0, steps: 0 })),
//!     Contender::new("fast", Box::new(Halver { value: 10.0, steps: 0 })),
//! ];
//! let config = PortfolioConfig::successive_halving(contenders.len(), 8)
//!     .with_sharing(Sharing::Off);
//! let outcome = race(&config, contenders, |o| o.makespan);
//! assert_eq!(outcome.winner_name, "fast");
//! assert_eq!(outcome.total_children, 8, "shared budget spent exactly");
//! ```

#![warn(missing_docs)]

mod config;
mod race;

pub use config::{PortfolioConfig, RoundBudget, RoundSpec, Sharing};
pub use race::{race, Contender, EntryReport, PortfolioOutcome, RoundReport};

/// Splits a per-entry RNG seed off `master` (SplitMix64 finalizer):
/// nearby entry indices yield statistically unrelated streams, and the
/// mapping is stable so a race is reproducible from its master seed.
#[must_use]
pub fn entry_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|i| entry_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "no collisions in a roster");
        assert_eq!(entry_seed(42, 3), seeds[3], "stable mapping");
        assert_ne!(entry_seed(43, 3), seeds[3], "master seed matters");
    }
}
