//! # cmags-gridsim — discrete-event dynamic grid simulator
//!
//! The reproduced paper's closing claim (§1, §6) is that the cMA, run "in
//! batch mode for a very short time to schedule jobs arriving to the
//! system since the last activation", yields an efficient *dynamic*
//! scheduler. The authors defer evaluating that claim to future work with
//! "grid simulator packages"; this crate is that simulator, so the claim
//! becomes testable (`DESIGN.md` experiment DYN).
//!
//! ## Model
//!
//! * **Jobs** arrive through a configurable [`workload::ArrivalProcess`]
//!   — stationary Poisson, bursty on/off MMPP, diurnal sinusoidal-rate,
//!   or flash-crowd spikes; each carries a baseline workload drawn from
//!   the ETC class ranges ([`workload`]).
//! * **Machines** have speed characteristics consistent with the chosen
//!   [`cmags_etc::Consistency`] class; a [`scenario::ChurnModel`]
//!   governs how they join and leave the grid (independent churn,
//!   correlated mass-departure shocks, or a degrading pool), mirroring
//!   "resources could dynamically be added/dropped". A leaving machine
//!   kills its running job; killed and queued jobs are resubmitted.
//! * **Faults** are modelled separately from churn by a
//!   [`fault::FailureModel`]: jobs can fail transiently mid-execution,
//!   and machines can *crash* — a crash quarantines the machine until
//!   its exponential repair completes and kills the running job, where
//!   a churn *departure* removes the machine permanently and
//!   resubmits its whole queue. A [`fault::RecoveryPolicy`] governs
//!   what happens next: retry with backoff ([`fault::RetryPolicy`]),
//!   optional checkpoint/restart that banks completed progress, ETC
//!   inflation so the scheduler prices failure risk, and blacklisting
//!   of repeat-offender machines. All fault randomness flows through
//!   dedicated counter-based streams, so enabling faults never shifts
//!   the exogenous arrival/churn stream.
//! * The named regimes combining these axes live in the
//!   [`scenario::ScenarioFamily`] catalog (`calm`, `churny`, `bursty`,
//!   `diurnal`, `flash_crowd`, `degrading`, `volatile`, `flaky`,
//!   `crashy`); every family is deterministic per seed.
//! * Every `activation_interval` simulated seconds, the **batch
//!   scheduler** ([`scheduler::BatchScheduler`]) receives the pending jobs
//!   and the alive machines (with their *ready times* — the remaining
//!   committed work) as an ETC instance, exactly the static problem of
//!   `cmags-core`. Assignments are dispatched to per-machine queues
//!   executed in SPT order (the evaluation convention of the whole
//!   workspace).
//! * [`metrics::SimReport`] aggregates realized makespan, flowtime,
//!   waiting times, utilisation and scheduler statistics, plus a
//!   [`metrics::TelemetryReport`] of always-on tick-domain telemetry:
//!   exact wait/response histograms with p50/p95/p99, load gauges and
//!   fault counters. Wall-clock phase profiling
//!   ([`Simulation::with_profiling`]) and JSONL event tracing
//!   ([`Simulation::with_trace`]) are opt-in; the tick-domain-exact vs
//!   wall-clock-informational split is defined in
//!   [`cmags_core::telemetry`].
//! * The **event core** runs on exact fixed-point ticks
//!   (`cmags_core::ticks`): the [`event`] module's calendar queue
//!   drains events in O(1) amortised with lazy cancellation of stale
//!   finishes, job state lives in an id-indexed arena, and dispatch
//!   works out of reusable scratch — the hot loop is allocation-free
//!   in steady state. A `BinaryHeap` reference backend
//!   ([`QueueKind::Heap`]) is retained and pinned bit-identical for
//!   oracle tests and the `million_jobs` benchmark baseline.
//!
//! ## Example
//!
//! ```
//! use cmags_gridsim::scheduler::HeuristicScheduler;
//! use cmags_gridsim::{SimConfig, Simulation};
//! use cmags_heuristics::constructive::ConstructiveKind;
//!
//! let config = SimConfig::small();
//! let mut scheduler = HeuristicScheduler::new(ConstructiveKind::MinMin);
//! let report = Simulation::new(config, 7).run(&mut scheduler);
//! assert_eq!(report.jobs_completed, report.jobs_submitted);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod fault;
mod jobs;
pub mod machine;
pub mod metrics;
pub mod scenario;
pub mod scheduler;
pub mod shard;
mod sim;
pub mod site;
pub mod workload;

pub use config::ConfigError;
pub use event::QueueKind;
pub use fault::{FailureModel, RecoveryPolicy, RetryPolicy};
pub use metrics::{SimReport, TelemetryReport};
pub use scenario::{ChurnModel, ScenarioFamily};
pub use shard::ShardedEventQueue;
pub use sim::{ticks_to_time, time_to_ticks, SimConfig, Simulation};
pub use site::SiteTopology;
pub use workload::ArrivalProcess;
