//! Additional local search methods (extensions; paper §6 plans
//! "considering other operators and methods").
//!
//! Both come from the wider family in Xhafa's local-search studies for
//! this problem:
//!
//! * [`LocalMctMove`] — move a random job to its *minimum completion
//!   time* machine: a single well-aimed probe, between LM and SLM in
//!   cost.
//! * [`LocalFlowtimeSwap`] — LMCTS's structure with candidates ranked by
//!   **flowtime** instead of scalarised fitness, useful when the QoS
//!   objective is the bottleneck.
//!
//! Both only commit strictly fitness-improving steps, preserving the
//! hill-climbing contract of the [`super::LocalSearch`] trait.

use cmags_core::{EvalState, JobId, MachineId, Problem, Schedule};
use rand::{Rng, RngCore};

use super::LocalSearch;

/// Move a random job to the machine that would finish it earliest
/// (the MCT criterion), committing only on strict fitness improvement.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalMctMove;

impl LocalSearch for LocalMctMove {
    fn name(&self) -> &'static str {
        "LMCTM"
    }

    fn step(
        &self,
        problem: &Problem,
        schedule: &mut Schedule,
        eval: &mut EvalState,
        rng: &mut dyn RngCore,
    ) -> bool {
        let nb_machines = problem.nb_machines() as MachineId;
        if nb_machines < 2 {
            return false;
        }
        let job = rng.gen_range(0..schedule.nb_jobs() as JobId);
        let current = schedule.machine_of(job);
        // MCT target: argmin over machines of completion + etc.
        let row = problem.etc_row(job);
        let mut target = current;
        let mut best_ct = f64::INFINITY;
        for (m, &etc) in row.iter().enumerate() {
            let m = m as MachineId;
            if m == current {
                continue;
            }
            let ct = eval.completion(m) + etc;
            if ct < best_ct {
                best_ct = ct;
                target = m;
            }
        }
        if target == current {
            return false;
        }
        let candidate = problem.fitness(eval.peek_move(problem, schedule, job, target));
        if candidate < eval.fitness(problem) {
            eval.apply_move(problem, schedule, job, target);
            true
        } else {
            false
        }
    }
}

/// LMCTS's anchored-swap scan ranked by **flowtime**; commits the best
/// candidate only when the scalarised fitness strictly improves. The
/// scan is one batched [`EvalState::score_swaps`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalFlowtimeSwap;

impl LocalSearch for LocalFlowtimeSwap {
    fn name(&self) -> &'static str {
        "LFTS"
    }

    fn step(
        &self,
        problem: &Problem,
        schedule: &mut Schedule,
        eval: &mut EvalState,
        rng: &mut dyn RngCore,
    ) -> bool {
        let nb_jobs = schedule.nb_jobs() as JobId;
        if nb_jobs < 2 || problem.nb_machines() < 2 {
            return false;
        }
        let anchor = rng.gen_range(0..nb_jobs);
        let anchor_machine = schedule.machine_of(anchor);

        super::with_scratch(|scratch| {
            scratch.partners.clear();
            scratch
                .partners
                .extend((0..nb_jobs).filter(|&j| schedule.machine_of(j) != anchor_machine));
            if scratch.partners.is_empty() {
                return false;
            }
            eval.score_swaps(
                problem,
                schedule,
                anchor,
                &scratch.partners,
                &mut scratch.scores,
            );
            let (best, best_flowtime) = scratch
                .scores
                .best_flowtime()
                .expect("partners is non-empty");
            if best_flowtime >= eval.flowtime() {
                return false;
            }
            // Rank by flowtime, commit on fitness: the step must stay
            // a strict improvement under the algorithm's objective.
            let fitness = problem.fitness(scratch.scores.objectives(best));
            if fitness < eval.fitness(problem) {
                eval.apply_swap(problem, schedule, anchor, scratch.partners[best]);
                true
            } else {
                false
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{problem, random_start};
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mct_move_improves_unbalanced_schedules() {
        let p = problem();
        let mut s = Schedule::uniform(p.nb_jobs(), 0);
        let mut eval = EvalState::new(&p, &s);
        let before = eval.fitness(&p);
        let mut rng = SmallRng::seed_from_u64(1);
        let improved = LocalMctMove.run(&p, &mut s, &mut eval, &mut rng, 60);
        assert!(improved > 0);
        assert!(eval.fitness(&p) < before);
        eval.debug_validate(&p, &s);
    }

    #[test]
    fn flowtime_swap_reduces_flowtime() {
        let p = problem();
        let (mut s, mut eval) = random_start(&p, 2);
        let before = eval.flowtime();
        let mut rng = SmallRng::seed_from_u64(3);
        let improved = LocalFlowtimeSwap.run(&p, &mut s, &mut eval, &mut rng, 60);
        assert!(improved > 0);
        assert!(eval.flowtime() < before);
        eval.debug_validate(&p, &s);
    }

    #[test]
    fn both_respect_strict_improvement_contract() {
        let p = problem();
        let (mut s, mut eval) = random_start(&p, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..40 {
            let before = eval.fitness(&p);
            let changed_a = LocalMctMove.step(&p, &mut s, &mut eval, &mut rng);
            if changed_a {
                assert!(eval.fitness(&p) < before);
            }
            let before = eval.fitness(&p);
            let changed_b = LocalFlowtimeSwap.step(&p, &mut s, &mut eval, &mut rng);
            if changed_b {
                assert!(eval.fitness(&p) < before);
            }
        }
    }

    #[test]
    fn single_machine_noop() {
        let etc = cmags_etc::EtcMatrix::from_rows(3, 1, vec![1.0, 2.0, 3.0]);
        let p = Problem::from_instance(&cmags_etc::GridInstance::new("one", etc));
        let mut s = Schedule::uniform(3, 0);
        let mut eval = EvalState::new(&p, &s);
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(!LocalMctMove.step(&p, &mut s, &mut eval, &mut rng));
        assert!(!LocalFlowtimeSwap.step(&p, &mut s, &mut eval, &mut rng));
    }
}
