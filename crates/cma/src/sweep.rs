//! Asynchronous cell-update sweep orders (paper §3.2, Fig. 5).
//!
//! In the asynchronous cellular model, cells are updated one at a time in
//! some order, so an individual can see neighbours that were already
//! replaced *within the same iteration*. The paper studies three orders
//! and fixes FLS for recombination and NRS for mutation (Table 1).

use rand::seq::SliceRandom;
use rand::RngCore;

/// The cell-visit policy of one operator pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOrder {
    /// **FLS** — Fixed Line Sweep: row by row, always the same.
    FixedLineSweep,
    /// **FRS** — Fixed Random Sweep: one random permutation drawn at
    /// start-up and reused for the whole run.
    FixedRandomSweep,
    /// **NRS** — New Random Sweep: a fresh permutation every sweep.
    NewRandomSweep,
}

impl SweepOrder {
    /// The orders compared in the paper's Fig. 5.
    pub const PAPER_ORDERS: [SweepOrder; 3] = [
        SweepOrder::FixedLineSweep,
        SweepOrder::FixedRandomSweep,
        SweepOrder::NewRandomSweep,
    ];

    /// Report name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SweepOrder::FixedLineSweep => "FLS",
            SweepOrder::FixedRandomSweep => "FRS",
            SweepOrder::NewRandomSweep => "NRS",
        }
    }
}

/// Iterator state of one sweep order over `n` cells.
///
/// [`SweepState::next_cell`] yields cells endlessly, reshuffling at sweep
/// boundaries when the order is [`SweepOrder::NewRandomSweep`]. This
/// matches the template's `rec_order.next()` / "Update rec_order and
/// mut_order" steps.
#[derive(Debug, Clone)]
pub struct SweepState {
    kind: SweepOrder,
    order: Vec<usize>,
    cursor: usize,
}

impl SweepState {
    /// Creates the state for `n` cells, drawing any initial permutation
    /// from `rng`.
    #[must_use]
    pub fn new(kind: SweepOrder, n: usize, rng: &mut dyn RngCore) -> Self {
        assert!(n > 0, "sweep requires at least one cell");
        let mut order: Vec<usize> = (0..n).collect();
        match kind {
            SweepOrder::FixedLineSweep => {}
            SweepOrder::FixedRandomSweep | SweepOrder::NewRandomSweep => {
                order.shuffle(rng);
            }
        }
        Self {
            kind,
            order,
            cursor: 0,
        }
    }

    /// The sweep order kind.
    #[must_use]
    pub fn kind(&self) -> SweepOrder {
        self.kind
    }

    /// Yields the next cell, wrapping (and reshuffling for NRS) at sweep
    /// boundaries.
    pub fn next_cell(&mut self, rng: &mut dyn RngCore) -> usize {
        if self.cursor == self.order.len() {
            self.cursor = 0;
            if self.kind == SweepOrder::NewRandomSweep {
                self.order.shuffle(rng);
            }
        }
        let cell = self.order[self.cursor];
        self.cursor += 1;
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn take(state: &mut SweepState, rng: &mut SmallRng, k: usize) -> Vec<usize> {
        (0..k).map(|_| state.next_cell(rng)).collect()
    }

    #[test]
    fn fls_is_sequential_and_periodic() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = SweepState::new(SweepOrder::FixedLineSweep, 4, &mut rng);
        assert_eq!(take(&mut s, &mut rng, 9), vec![0, 1, 2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn frs_repeats_one_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = SweepState::new(SweepOrder::FixedRandomSweep, 8, &mut rng);
        let first = take(&mut s, &mut rng, 8);
        let second = take(&mut s, &mut rng, 8);
        assert_eq!(first, second);
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "must be a permutation");
    }

    #[test]
    fn nrs_reshuffles_each_sweep() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut s = SweepState::new(SweepOrder::NewRandomSweep, 32, &mut rng);
        let first = take(&mut s, &mut rng, 32);
        let second = take(&mut s, &mut rng, 32);
        // Each sweep is a permutation...
        for sweep in [&first, &second] {
            let mut sorted = sweep.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        }
        // ...and consecutive sweeps differ with overwhelming probability.
        assert_ne!(first, second);
    }

    #[test]
    fn every_cell_visited_exactly_once_per_sweep() {
        let mut rng = SmallRng::seed_from_u64(3);
        for kind in SweepOrder::PAPER_ORDERS {
            let mut s = SweepState::new(kind, 25, &mut rng);
            // Partial consumption across the boundary still covers each
            // cell once per 25 calls.
            for _ in 0..3 {
                let mut sweep = take(&mut s, &mut rng, 25);
                sweep.sort_unstable();
                assert_eq!(sweep, (0..25).collect::<Vec<_>>(), "{}", kind.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = SweepState::new(SweepOrder::FixedLineSweep, 0, &mut rng);
    }
}
