//! Statistical summaries of ETC matrices.
//!
//! Used to validate that generated instances exhibit the heterogeneity and
//! consistency structure their class advertises, and by the reporting
//! harness to describe workloads.

use crate::{Consistency, EtcMatrix};

/// Summary statistics of an ETC matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Smallest entry.
    pub min: f64,
    /// Largest entry.
    pub max: f64,
    /// Mean of all entries.
    pub mean: f64,
    /// Coefficient of variation (σ/μ) of all entries.
    pub cv: f64,
    /// Mean coefficient of variation across rows — the empirical *machine*
    /// heterogeneity (how much machines disagree about one job).
    pub mean_row_cv: f64,
    /// Coefficient of variation of the per-job mean ETC — the empirical
    /// *job* heterogeneity (how much job sizes differ).
    pub job_mean_cv: f64,
    /// Mean over rows of `row_max / row_min` — the empirical *machine*
    /// heterogeneity expressed as a speed spread. A `U(1, φ_mach)`
    /// multiplier makes this grow with `φ_mach`, unlike the CV, which
    /// saturates at `1/√3` for wide uniform ranges.
    pub mean_row_spread: f64,
    /// `max(job mean) / min(job mean)` — the empirical *job* heterogeneity
    /// expressed as a workload spread, growing with `φ_task`.
    pub job_spread: f64,
    /// Structural classification.
    pub consistency: Consistency,
}

/// Computes mean and population standard deviation of a slice.
///
/// Returns `(0, 0)` for an empty slice.
#[must_use]
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Coefficient of variation; zero when the mean is zero.
#[must_use]
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let (mean, std) = mean_std(values);
    if mean == 0.0 {
        0.0
    } else {
        std / mean
    }
}

impl MatrixStats {
    /// Computes the summary of a matrix.
    #[must_use]
    pub fn compute(matrix: &EtcMatrix) -> Self {
        let all = matrix.as_slice();
        let (mean, std) = mean_std(all);
        let cv = if mean == 0.0 { 0.0 } else { std / mean };

        let mut row_cv_sum = 0.0;
        let mut row_spread_sum = 0.0;
        let mut job_means = Vec::with_capacity(matrix.nb_jobs());
        for row in matrix.rows() {
            row_cv_sum += coefficient_of_variation(row);
            let row_min = row.iter().copied().fold(f64::INFINITY, f64::min);
            let row_max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            row_spread_sum += row_max / row_min;
            job_means.push(row.iter().sum::<f64>() / row.len() as f64);
        }
        let mean_row_cv = row_cv_sum / matrix.nb_jobs() as f64;
        let mean_row_spread = row_spread_sum / matrix.nb_jobs() as f64;
        let job_mean_cv = coefficient_of_variation(&job_means);
        let job_min = job_means.iter().copied().fold(f64::INFINITY, f64::min);
        let job_max = job_means.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        Self {
            min: matrix.min_etc(),
            max: matrix.max_etc(),
            mean,
            cv,
            mean_row_cv,
            job_mean_cv,
            mean_row_spread,
            job_spread: job_max / job_min,
            consistency: matrix.classify(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::braun;
    use crate::{Heterogeneity, InstanceClass};

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn cv_of_constant_is_zero() {
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn stats_identify_consistency() {
        let m = braun::generate_matrix("u_c_hihi.0".parse().unwrap(), 0);
        assert_eq!(
            MatrixStats::compute(&m).consistency,
            Consistency::Consistent
        );
    }

    /// Empirical machine heterogeneity (within-row speed spread) must be
    /// much larger in `*hi` machine classes than in `*lo` ones — the
    /// defining property of the taxonomy. Note the *CV* cannot separate the
    /// classes: for `U(1, φ)` it saturates at `1/√3` as `φ` grows.
    #[test]
    fn machine_heterogeneity_ordering_holds() {
        let hi = braun::generate_matrix("u_i_hihi.0".parse().unwrap(), 0);
        let lo = braun::generate_matrix("u_i_hilo.0".parse().unwrap(), 0);
        let s_hi = MatrixStats::compute(&hi);
        let s_lo = MatrixStats::compute(&lo);
        assert!(
            s_hi.mean_row_spread > 5.0 * s_lo.mean_row_spread,
            "machine-hi spread {} should dominate machine-lo spread {}",
            s_hi.mean_row_spread,
            s_lo.mean_row_spread
        );
        // The lo class multiplier is U(1, 10), so spreads stay below 10.
        assert!(s_lo.mean_row_spread <= 10.0);
    }

    /// Empirical job heterogeneity (workload spread) must be much larger in
    /// `hi*` job classes than in `lo*` ones.
    #[test]
    fn job_heterogeneity_ordering_holds() {
        // Use low machine heterogeneity so the job signal dominates.
        let hi = braun::generate_matrix("u_i_hilo.0".parse().unwrap(), 0);
        let lo = braun::generate_matrix("u_i_lolo.0".parse().unwrap(), 0);
        let s_hi = MatrixStats::compute(&hi);
        let s_lo = MatrixStats::compute(&lo);
        assert!(
            s_hi.job_spread > 2.0 * s_lo.job_spread,
            "job-hi spread {} should dominate job-lo spread {}",
            s_hi.job_spread,
            s_lo.job_spread
        );
    }

    /// The ordering is stable across every replica index we test — a cheap
    /// robustness check on the generator as a whole.
    #[test]
    fn heterogeneity_ordering_stable_across_replicas() {
        for index in 0..5 {
            for cons in crate::Consistency::ALL {
                let hi = braun::generate_matrix(
                    InstanceClass::new(cons, Heterogeneity::Hi, Heterogeneity::Hi, index),
                    0,
                );
                let lo = braun::generate_matrix(
                    InstanceClass::new(cons, Heterogeneity::Lo, Heterogeneity::Lo, index),
                    0,
                );
                assert!(MatrixStats::compute(&hi).max > MatrixStats::compute(&lo).max);
            }
        }
    }
}
