//! Meta-rule fixture: pragmas that are themselves defects. The first
//! suppresses nothing (`pragma-unused`); the second names a rule that
//! does not exist (`pragma-unknown-rule`).

/// Nothing on the next line violates anything, so the pragma is stale.
pub fn innocent() -> u64 {
    // lint:allow(no-hash-collections): left behind after a refactor
    42
}

/// Typo'd rule name: suppresses nothing and hides intent.
pub fn typo() -> u64 {
    // lint:allow(no-hash-maps): misremembered rule name
    7
}
