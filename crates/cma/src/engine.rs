//! The cMA engine — a faithful implementation of the paper's Algorithm 1.
//!
//! ```text
//! Initialize the mesh of n individuals P(t=0);
//! Initialize permutations rec_order and mut_order;
//! For each i ∈ P, LocalSearch(i); Evaluate(P);
//! while not stopping condition do
//!     for j = 1 … #recombinations do
//!         SelectToRecombine S ⊆ N_P[rec_order.current];
//!         i' = Recombine(S);
//!         LocalSearch(i'); Evaluate(i');
//!         Replace P[rec_order.current] by i' (if better);
//!         rec_order.next();
//!     for j = 1 … #mutations do
//!         i = P[mut_order.current()];
//!         i' = Mutate(i);
//!         LocalSearch(i'); Evaluate(i');
//!         Replace P[mut_order.current] by i' (if better);
//!         mut_order.next();
//!     Update rec_order and mut_order;
//! ```
//!
//! Two template details deserve a note (`DESIGN.md` §2): the paper's
//! pseudo-code writes `Replace P[rec_order.current]` inside the *mutation*
//! loop and advances `rec_order` there; we treat both as typos for
//! `mut_order` — mutating cell X and replacing cell Y would make the
//! mutation pass incoherent. And `SelectToRecombine` returns
//! `nb_to_recombine` tournament winners, of which the **two fittest** feed
//! the (binary) one-point recombination.

use std::time::{Duration, Instant};

use cmags_core::{EvalState, Objectives, Problem, Schedule};
use cmags_heuristics::perturb;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::{CmaConfig, UpdatePolicy};
use crate::diversity::{self, DiversityPoint};
use crate::topology::Torus;
use crate::trace::TracePoint;

/// One cell of the population: a schedule with its evaluation caches.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The chromosome.
    pub schedule: Schedule,
    /// Incremental evaluator, kept in lockstep with `schedule`.
    pub eval: EvalState,
    /// Cached scalarised fitness (lower is better).
    pub fitness: f64,
}

impl Individual {
    /// Evaluates `schedule` from scratch.
    #[must_use]
    pub fn new(problem: &Problem, schedule: Schedule) -> Self {
        let eval = EvalState::new(problem, &schedule);
        let fitness = eval.fitness(problem);
        Self { schedule, eval, fitness }
    }

    /// Re-derives the cached fitness from the evaluator (after in-place
    /// mutation or local search).
    pub fn refresh_fitness(&mut self, problem: &Problem) {
        self.fitness = self.eval.fitness(problem);
    }

    /// The objective pair of this individual.
    #[must_use]
    pub fn objectives(&self) -> Objectives {
        self.eval.objectives()
    }
}

/// Result of one cMA run.
#[derive(Debug, Clone)]
pub struct CmaOutcome {
    /// Best schedule found.
    pub schedule: Schedule,
    /// Its objective values.
    pub objectives: Objectives,
    /// Its scalarised fitness.
    pub fitness: f64,
    /// Outer iterations completed.
    pub iterations: u64,
    /// Children generated (operator applications).
    pub children: u64,
    /// Children that replaced their cell.
    pub accepted: u64,
    /// Local-search steps that improved an offspring.
    pub ls_improvements: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// RNG seed of the run.
    pub seed: u64,
    /// Best-so-far samples (one per improvement + start and end).
    pub trace: Vec<TracePoint>,
    /// Per-iteration population diversity samples (assignment entropy +
    /// fitness spread) — the observable behind the paper's claim that
    /// cellular populations sustain diversity.
    pub diversity: Vec<DiversityPoint>,
}

/// Internal run state.
struct Run<'a> {
    problem: &'a Problem,
    config: &'a CmaConfig,
    population: Vec<Individual>,
    torus: Torus,
    rng: SmallRng,
    start: Instant,
    seed: u64,
    iterations: u64,
    children: u64,
    accepted: u64,
    ls_improvements: u64,
    best: Individual,
    trace: Vec<TracePoint>,
    diversity: Vec<DiversityPoint>,
    /// Scratch buffers, reused across operator applications.
    neighbors: Vec<usize>,
    parents: Vec<usize>,
    /// Pending replacements for the synchronous ablation.
    pending: Vec<Option<Individual>>,
}

/// Runs the configured cMA on `problem` with RNG `seed`.
///
/// # Panics
///
/// Panics on structurally invalid configurations (see
/// [`CmaConfig::validate`]).
#[must_use]
pub fn run(config: &CmaConfig, problem: &Problem, seed: u64) -> CmaOutcome {
    config.validate();
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(seed);
    let torus = Torus::new(config.pop_height, config.pop_width);

    // --- Initialize the mesh of n individuals P(t=0). ---
    // Individual 0 comes from the seeding heuristic; the rest are large
    // perturbations of it (paper §3.2).
    let seed_schedule = config.seeding.build_seeded(problem, &mut rng);
    let mut population = Vec::with_capacity(torus.len());
    population.push(Individual::new(problem, seed_schedule.clone()));
    for _ in 1..torus.len() {
        let perturbed = perturb(problem, &seed_schedule, config.perturb_strength, &mut rng);
        population.push(Individual::new(problem, perturbed));
    }

    // --- For each i ∈ P, LocalSearch(i); Evaluate(P). ---
    let mut ls_improvements = 0u64;
    for individual in &mut population {
        ls_improvements += config.local_search.run(
            problem,
            &mut individual.schedule,
            &mut individual.eval,
            &mut rng,
            config.ls_iterations,
        ) as u64;
        individual.refresh_fitness(problem);
    }

    let best = best_of_population(&population).clone();
    let mut run = Run {
        problem,
        config,
        torus,
        rng,
        start,
        seed,
        iterations: 0,
        children: 0,
        accepted: 0,
        ls_improvements,
        trace: vec![TracePoint::new(
            start.elapsed(),
            0,
            0,
            best.eval.makespan(),
            best.eval.flowtime(),
            best.fitness,
        )],
        best,
        diversity: Vec::new(),
        neighbors: Vec::new(),
        parents: Vec::new(),
        pending: vec![None; population.len()],
        population,
    };
    run.sample_diversity();

    // --- Initialize permutations rec_order and mut_order. ---
    let mut rec_order =
        crate::sweep::SweepState::new(config.rec_order, run.torus.len(), &mut run.rng);
    let mut mut_order =
        crate::sweep::SweepState::new(config.mut_order, run.torus.len(), &mut run.rng);

    // --- Main loop. ---
    'outer: loop {
        // Recombination pass.
        for _ in 0..config.nb_recombinations {
            if run.should_stop() {
                break 'outer;
            }
            let cell = rec_order.next_cell(&mut run.rng);
            run.recombination_step(cell);
        }
        run.commit_pending();

        // Mutation pass.
        for _ in 0..config.nb_mutations {
            if run.should_stop() {
                break 'outer;
            }
            let cell = mut_order.next_cell(&mut run.rng);
            run.mutation_step(cell);
        }
        run.commit_pending();

        run.iterations += 1;
        run.sample_diversity();
        // ("Update rec_order and mut_order" happens inside SweepState at
        // sweep boundaries.)
    }

    run.finish()
}

impl Run<'_> {
    fn should_stop(&self) -> bool {
        self.config.stop.should_stop(
            self.start.elapsed(),
            self.iterations,
            self.children,
            self.best.fitness,
        )
    }

    /// `SelectToRecombine S ⊆ N_P[cell]; i' = Recombine(S); LocalSearch;
    /// Evaluate; Replace if better.`
    fn recombination_step(&mut self, cell: usize) {
        self.config.neighborhood.collect(self.torus, cell, &mut self.neighbors);

        // nb_to_recombine tournament winners from the neighbourhood...
        // (explicit field borrows keep population reads disjoint from the
        // RNG and scratch buffers)
        {
            let population = &self.population;
            let fitness = |i: usize| population[i].fitness;
            self.config.selection.select_many(
                &self.neighbors,
                &fitness,
                &mut self.rng,
                self.config.nb_to_recombine,
                &mut self.parents,
            );
        }
        // ...of which the two fittest recombine.
        let population = &self.population;
        let (first, second) = two_fittest(&self.parents, &|i: usize| population[i].fitness);
        let child_schedule = self.config.crossover.apply(
            &self.population[first].schedule,
            &self.population[second].schedule,
            &mut self.rng,
        );

        let mut child = Individual::new(self.problem, child_schedule);
        self.improve(&mut child);
        self.offer(cell, child);
    }

    /// `i' = Mutate(P[cell]); LocalSearch; Evaluate; Replace if better.`
    fn mutation_step(&mut self, cell: usize) {
        let mut child = self.population[cell].clone();
        self.config.mutation.apply(
            self.problem,
            &mut child.schedule,
            &mut child.eval,
            &mut self.rng,
        );
        child.refresh_fitness(self.problem);
        self.improve(&mut child);
        self.offer(cell, child);
    }

    /// Bounded local search + fitness refresh.
    fn improve(&mut self, child: &mut Individual) {
        self.ls_improvements += self.config.local_search.run(
            self.problem,
            &mut child.schedule,
            &mut child.eval,
            &mut self.rng,
            self.config.ls_iterations,
        ) as u64;
        child.refresh_fitness(self.problem);
    }

    /// Replacement: strict improvement only (`add_only_if_better`), or
    /// unconditional when the ablation flag clears it.
    fn offer(&mut self, cell: usize, child: Individual) {
        self.children += 1;
        let better = child.fitness < self.population[cell].fitness;
        if better || !self.config.add_only_if_better {
            if child.fitness < self.best.fitness {
                self.best = child.clone();
                self.record_trace_point();
            }
            match self.config.update_policy {
                UpdatePolicy::Asynchronous => self.population[cell] = child,
                UpdatePolicy::Synchronous => {
                    // Last writer per cell wins within a pass.
                    self.pending[cell] = Some(child);
                }
            }
            if better {
                self.accepted += 1;
            }
        }
    }

    /// Applies buffered replacements (synchronous mode only).
    fn commit_pending(&mut self) {
        if self.config.update_policy == UpdatePolicy::Synchronous {
            for (cell, slot) in self.pending.iter_mut().enumerate() {
                if let Some(child) = slot.take() {
                    self.population[cell] = child;
                }
            }
        }
    }

    /// Samples population diversity (cheap entropy estimator) once per
    /// outer iteration.
    fn sample_diversity(&mut self) {
        if self.problem.nb_machines() < 2 {
            return;
        }
        let schedules: Vec<&cmags_core::Schedule> =
            self.population.iter().map(|i| &i.schedule).collect();
        let fitness: Vec<f64> = self.population.iter().map(|i| i.fitness).collect();
        self.diversity.push(DiversityPoint {
            iteration: self.iterations,
            entropy: diversity::assignment_entropy(&schedules, self.problem.nb_machines()),
            fitness_spread: diversity::fitness_spread(&fitness),
        });
    }

    fn record_trace_point(&mut self) {
        self.trace.push(TracePoint::new(
            self.start.elapsed(),
            self.iterations,
            self.children,
            self.best.eval.makespan(),
            self.best.eval.flowtime(),
            self.best.fitness,
        ));
    }

    fn finish(mut self) -> CmaOutcome {
        self.record_trace_point();
        CmaOutcome {
            objectives: self.best.objectives(),
            fitness: self.best.fitness,
            schedule: self.best.schedule,
            iterations: self.iterations,
            children: self.children,
            accepted: self.accepted,
            ls_improvements: self.ls_improvements,
            elapsed: self.start.elapsed(),
            seed: self.seed,
            trace: self.trace,
            diversity: self.diversity,
        }
    }
}

/// The fittest individual of a population slice.
fn best_of_population(population: &[Individual]) -> &Individual {
    population
        .iter()
        .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
        .expect("population is never empty")
}

/// Indices of the two fittest entries of `parents` (which may repeat when
/// selection returned duplicates — harmless: crossover of identical
/// parents reproduces the parent).
fn two_fittest(parents: &[usize], fitness: &dyn Fn(usize) -> f64) -> (usize, usize) {
    debug_assert!(parents.len() >= 2);
    let mut sorted: Vec<usize> = parents.to_vec();
    sorted.sort_by(|&a, &b| fitness(a).total_cmp(&fitness(b)));
    (sorted[0], sorted[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopCondition;
    use cmags_etc::braun;

    fn problem() -> Problem {
        let class: cmags_etc::InstanceClass = "u_c_hihi.0".parse().unwrap();
        Problem::from_instance(&braun::generate(class.with_dims(128, 8), 0))
    }

    fn quick_config() -> CmaConfig {
        CmaConfig::paper().with_stop(StopCondition::iterations(4))
    }

    #[test]
    fn runs_and_reports_consistent_counters() {
        let p = problem();
        let outcome = quick_config().run(&p, 7);
        assert_eq!(outcome.iterations, 4);
        // 4 iterations x (25 + 12) children.
        assert_eq!(outcome.children, 4 * 37);
        assert!(outcome.accepted <= outcome.children);
        assert!(outcome.trace.len() >= 2);
        assert!(outcome.objectives.makespan > 0.0);
    }

    #[test]
    fn deterministic_under_iteration_budget() {
        let p = problem();
        let a = quick_config().run(&p, 99);
        let b = quick_config().run(&p, 99);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.objectives, b.objectives);
        assert_eq!(a.children, b.children);
        let c = quick_config().run(&p, 100);
        // Different seeds explore differently (overwhelmingly likely).
        assert_ne!(a.schedule, c.schedule);
    }

    #[test]
    fn improves_over_its_own_seed_heuristic() {
        let p = problem();
        use cmags_heuristics::constructive::{Constructive, LjfrSjfr};
        let seed_fitness = Individual::new(&p, LjfrSjfr.build(&p)).fitness;
        let outcome =
            CmaConfig::paper().with_stop(StopCondition::iterations(10)).run(&p, 3);
        assert!(
            outcome.fitness < seed_fitness,
            "cMA ({}) must improve on LJFR-SJFR ({seed_fitness})",
            outcome.fitness
        );
    }

    #[test]
    fn trace_is_monotone_in_time_and_fitness() {
        let p = problem();
        let outcome = quick_config().run(&p, 11);
        for w in outcome.trace.windows(2) {
            assert!(w[1].elapsed_ms >= w[0].elapsed_ms);
            assert!(w[1].fitness <= w[0].fitness);
        }
    }

    #[test]
    fn best_matches_reevaluation() {
        let p = problem();
        let outcome = quick_config().run(&p, 5);
        let fresh = cmags_core::evaluate(&p, &outcome.schedule);
        assert_eq!(outcome.objectives, fresh);
        assert_eq!(outcome.fitness, p.fitness(fresh));
    }

    #[test]
    fn children_budget_stops_early() {
        let p = problem();
        let outcome = CmaConfig::paper().with_stop(StopCondition::children(10)).run(&p, 1);
        assert_eq!(outcome.children, 10);
        assert_eq!(outcome.iterations, 0, "stopped mid-first-iteration");
    }

    #[test]
    fn synchronous_policy_runs_and_improves() {
        let p = problem();
        let outcome = quick_config()
            .with_update_policy(UpdatePolicy::Synchronous)
            .run(&p, 13);
        assert!(outcome.accepted > 0);
        let fresh = cmags_core::evaluate(&p, &outcome.schedule);
        assert_eq!(outcome.objectives, fresh);
    }

    #[test]
    fn target_fitness_short_circuits() {
        let p = problem();
        // Target = infinity-ish: met immediately after init.
        let outcome = CmaConfig::paper()
            .with_stop(StopCondition::iterations(1000).and_target_fitness(f64::MAX))
            .run(&p, 2);
        assert_eq!(outcome.children, 0);
    }

    #[test]
    fn panmictic_neighborhood_also_works() {
        let p = problem();
        let outcome = quick_config()
            .with_neighborhood(crate::Neighborhood::Panmictic)
            .run(&p, 21);
        assert!(outcome.objectives.makespan > 0.0);
    }

    #[test]
    fn two_fittest_orders_correctly() {
        let fitness = |i: usize| [5.0, 1.0, 3.0][i];
        assert_eq!(two_fittest(&[0, 1, 2], &fitness), (1, 2));
        assert_eq!(two_fittest(&[2, 2], &fitness), (2, 2));
    }
}
