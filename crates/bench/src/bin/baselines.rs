//! Re-stages Braun et al.'s classic mapper line-up (one-shot
//! heuristics, SA, Tabu, GAs) with the paper's cMA added, over the
//! twelve benchmark classes under equal budgets.

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::baselines::baselines;
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    let (detail, aggregate) = baselines(&ctx);
    emit(&ctx, &[detail, aggregate]);
}
