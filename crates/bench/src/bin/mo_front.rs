//! Runs the dominance-based multi-objective comparison (paper §6
//! future work): λ-scan vs MoCell vs NSGA-II, scored with hypervolume,
//! additive ε, IGD and spread against the union front.

use cmags_bench::args::{Args, Ctx};
use cmags_bench::experiments::mo_front::mo_front;
use cmags_bench::report::emit;

fn main() {
    let ctx = Ctx::from_args(&Args::from_env());
    emit(&ctx, &[mo_front(&ctx)]);
}
