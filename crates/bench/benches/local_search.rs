//! Per-step cost of the local search methods (Fig. 2's contenders plus
//! the VND extension) on the benchmark scale (512 × 16).
//!
//! LM probes one move, SLM scans the machines, LMCTS scans the jobs —
//! the measured step costs should reflect exactly that hierarchy.

use std::hint::black_box;

use cmags_core::{EvalState, Problem, Schedule};
use cmags_etc::{braun, InstanceClass};
use cmags_heuristics::local_search::LocalSearchKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn problem() -> Problem {
    let class: InstanceClass = "u_c_hihi.0".parse().unwrap();
    Problem::from_instance(&braun::generate(class, 0))
}

fn bench_local_search(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("local_search_step");
    for kind in [
        LocalSearchKind::Lm,
        LocalSearchKind::Slm,
        LocalSearchKind::Lmcts,
        LocalSearchKind::Vnd,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut schedule = Schedule::from_assignment(
                    (0..p.nb_jobs())
                        .map(|_| rng.gen_range(0..p.nb_machines() as u32))
                        .collect(),
                );
                let mut eval = EvalState::new(&p, &schedule);
                b.iter(|| {
                    black_box(kind.run(&p, &mut schedule, &mut eval, &mut rng, 1));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_local_search);
criterion_main!(benches);
